package core

// Fixtures reproducing the paper's worked examples and case analyses on
// concrete coordinates. The paper's figures carry no coordinates, so each
// fixture realizes the *structure* the figure illustrates and asserts the
// behaviour the text derives from it.

import (
	"math"
	"testing"

	"connquery/internal/geom"
	"connquery/internal/visgraph"
)

// Figure 2: the shortest obstacle path turns only at obstacle corners, and
// among multiple candidate corner routes the shortest one is returned.
func TestFigure2ShortestPathViaCorners(t *testing.T) {
	g := visgraph.New()
	ps := g.AddPoint(geom.Pt(0, 5), visgraph.KindAnchor)
	pe := g.AddPoint(geom.Pt(20, 5), visgraph.KindAnchor)
	// Two staggered obstacles force a zig-zag.
	g.AddObstacle(geom.R(4, 0, 6, 8))
	g.AddObstacle(geom.R(12, 2, 14, 12))

	dist, prev := g.ShortestPaths(ps)
	path := visgraph.PathTo(prev, ps, pe)
	if path == nil {
		t.Fatal("no path")
	}
	// Interior path nodes must all be obstacle corners.
	for _, id := range path[1 : len(path)-1] {
		if g.Kind(id) != visgraph.KindCorner {
			t.Fatalf("path passes non-corner node %v", g.Point(id))
		}
	}
	// The path length must beat every single-corner alternative and match
	// the brute-force oracle.
	want := visgraph.BruteObstructedDist(geom.Pt(0, 5), geom.Pt(20, 5),
		[]geom.Rect{geom.R(4, 0, 6, 8), geom.R(12, 2, 14, 12)})
	if math.Abs(dist[pe]-want) > 1e-9 {
		t.Fatalf("dist = %v, oracle %v", dist[pe], want)
	}
	if dist[pe] <= 20 {
		t.Fatalf("blocked path not longer than straight line: %v", dist[pe])
	}
}

// Theorem 1, Case 1 (d >= dist(u,v)): the new point replaces the incumbent
// over the whole interval without introducing split points.
func TestTheorem1Case1NewWinsEverywhere(t *testing.T) {
	q := geom.Seg(geom.Pt(0, 0), geom.Pt(10, 0))
	old := distFn{CP: geom.Pt(5, 9), Base: 0}
	new_ := distFn{CP: geom.Pt(5, 1), Base: 0}
	pieces := splitPieces(q, geom.Span{Lo: 0, Hi: 1}, old, new_, false)
	if len(pieces) != 1 || pieces[0].FirstWins {
		t.Fatalf("Case 1 pieces = %+v, want one piece won by the new point", pieces)
	}
}

// Theorem 1, Case 4 (d <= -a): the incumbent survives everywhere.
func TestTheorem1Case4OldWinsEverywhere(t *testing.T) {
	q := geom.Seg(geom.Pt(0, 0), geom.Pt(10, 0))
	old := distFn{CP: geom.Pt(5, 1), Base: 0}
	new_ := distFn{CP: geom.Pt(5, 9), Base: 0}
	pieces := splitPieces(q, geom.Span{Lo: 0, Hi: 1}, old, new_, false)
	if len(pieces) != 1 || !pieces[0].FirstWins {
		t.Fatalf("Case 4 pieces = %+v, want one piece kept by the incumbent", pieces)
	}
}

// Theorem 1, Case 3 (-a < d <= a): exactly one split point (the classical
// bisector crossing for two plain points).
func TestTheorem1Case3OneSplit(t *testing.T) {
	q := geom.Seg(geom.Pt(0, 0), geom.Pt(10, 0))
	old := distFn{CP: geom.Pt(2, 2), Base: 0}
	new_ := distFn{CP: geom.Pt(8, 2), Base: 0}
	pieces := splitPieces(q, geom.Span{Lo: 0, Hi: 1}, old, new_, false)
	if len(pieces) != 2 {
		t.Fatalf("Case 3 pieces = %+v, want two", pieces)
	}
	if !pieces[0].FirstWins || pieces[1].FirstWins {
		t.Fatalf("Case 3 ownership wrong: %+v", pieces)
	}
	if math.Abs(pieces[0].Span.Hi-0.5) > 1e-9 {
		t.Fatalf("split at %v, want 0.5", pieces[0].Span.Hi)
	}
}

// Theorem 1, Case 2 (a < d < dist(u,v)): exactly two split points — the
// incumbent keeps the middle stretch, the newcomer takes both ends. The
// newcomer's distance function is made nearly flat by a remote control
// point with a large negative base (a pure function-shape construction).
func TestTheorem1Case2TwoSplits(t *testing.T) {
	q := geom.Seg(geom.Pt(0, 0), geom.Pt(10, 0))
	old := distFn{CP: geom.Pt(5, 1), Base: 0}        // 1.0 at mid, ~5.1 at ends
	new_ := distFn{CP: geom.Pt(5, 1000), Base: -996} // ~4.0 everywhere
	pieces := splitPieces(q, geom.Span{Lo: 0, Hi: 1}, old, new_, false)
	if len(pieces) != 3 {
		t.Fatalf("Case 2 pieces = %+v, want three", pieces)
	}
	if pieces[0].FirstWins || !pieces[1].FirstWins || pieces[2].FirstWins {
		t.Fatalf("Case 2 ownership wrong: %+v", pieces)
	}
}

// Example 1 / Figure 7 structure: processing a point whose view of q is
// interrupted twice produces a CPL that interleaves direct stretches
// (control point = the point itself) with corner-mediated stretches, in
// left-to-right order.
func TestExample1CPLInterleaving(t *testing.T) {
	p := geom.Pt(6, 9)
	obstacles := []geom.Rect{geom.R(2, 4, 4, 7), geom.R(8, 4, 10, 7)}
	q := geom.Seg(geom.Pt(0, 0), geom.Pt(12, 0))
	sc := scene{points: []geom.Point{p}, obstacles: obstacles, q: q}
	e := sc.engine(Options{}, false)
	qs := e.newQueryState(q)
	pNode := qs.vg.AddPoint(p, visgraph.KindTransient)
	qs.ior(pNode)
	cpl := qs.computeCPL(pNode)

	direct, mediated := 0, 0
	for _, ce := range cpl {
		if !ce.Valid {
			t.Fatalf("unreachable stretch in a reachable configuration: %+v", cpl)
		}
		if ce.Fn.CP.Eq(p) {
			direct++
		} else {
			mediated++
		}
	}
	if direct == 0 || mediated == 0 {
		t.Fatalf("expected interleaved direct and corner-mediated entries: %+v", cpl)
	}
	// All entries must describe the true obstructed distance (spot check).
	for _, ce := range cpl {
		tt := ce.Span.Mid()
		want := visgraph.BruteObstructedDist(p, q.At(tt), obstacles)
		if got := ce.Fn.eval(q, tt); math.Abs(got-want) > 1e-6*(1+want) {
			t.Fatalf("entry %+v evaluates to %v, oracle %v", ce, got, want)
		}
	}
}

// Example 2 / Figure 8 structure: RLU with a second point that dominates
// the incumbent over a suffix of q replaces exactly that suffix and keeps
// the incumbent's prefix, with contiguous spans.
func TestExample2RLUSuffixTakeover(t *testing.T) {
	a := geom.Pt(1, 3)  // near S
	b := geom.Pt(11, 3) // near E
	q := geom.Seg(geom.Pt(0, 0), geom.Pt(12, 0))
	sc := scene{points: []geom.Point{a, b}, q: q}
	e := sc.engine(Options{}, false)
	qs := e.newQueryState(q)

	rl := []ResultEntry{{PID: NoOwner, Span: geom.Span{Lo: 0, Hi: 1}}}
	cplA := CPL{{Span: geom.Span{Lo: 0, Hi: 1}, Fn: distFn{CP: a, Base: 0}, Valid: true}}
	rl = qs.rlu(rl, 0, a, cplA)
	if len(rl) != 1 || rl[0].PID != 0 {
		t.Fatalf("after first point: %+v", rl)
	}
	cplB := CPL{{Span: geom.Span{Lo: 0, Hi: 1}, Fn: distFn{CP: b, Base: 0}, Valid: true}}
	rl = qs.rlu(rl, 1, b, cplB)
	if len(rl) != 2 || rl[0].PID != 0 || rl[1].PID != 1 {
		t.Fatalf("after second point: %+v", rl)
	}
	if math.Abs(rl[0].Span.Hi-0.5) > 1e-9 || math.Abs(rl[1].Span.Lo-0.5) > 1e-9 {
		t.Fatalf("split not at the bisector: %+v", rl)
	}
}

// Lemma 1's endpoint-dominance shortcut must agree with the full quadratic
// resolution on randomized cells (run with the shortcut force-enabled and
// compared against the ablated engine elsewhere; here we assert the
// precondition logic directly).
func TestLemma1ShortcutAgreesWithSplit(t *testing.T) {
	q := geom.Seg(geom.Pt(0, 0), geom.Pt(10, 0))
	cell := geom.Span{Lo: 0.1, Hi: 0.9}
	// Incumbent with the closer control point wins at both endpoints.
	old := distFn{CP: geom.Pt(5, 2), Base: 0}
	new_ := distFn{CP: geom.Pt(5, 6), Base: 0}
	if q.DistPerp(new_.CP) < q.DistPerp(old.CP) {
		t.Fatal("fixture drifted")
	}
	if old.eval(q, cell.Lo) > new_.eval(q, cell.Lo) || old.eval(q, cell.Hi) > new_.eval(q, cell.Hi) {
		t.Fatal("fixture drifted: old must win at both endpoints")
	}
	// The quadratic must then find no interior crossing.
	pieces := splitPieces(q, cell, old, new_, false)
	if len(pieces) != 1 || !pieces[0].FirstWins {
		t.Fatalf("Lemma 1 precondition held but Split disagrees: %+v", pieces)
	}
}
