package core

import (
	"math"
	"sync"

	"connquery/internal/flatgeom"
	"connquery/internal/geom"
	"connquery/internal/interval"
	"connquery/internal/minheap"
	"connquery/internal/rtree"
	"connquery/internal/stats"
	"connquery/internal/visgraph"
)

// Engine owns the indexes and executes queries. Exactly one of
// (Data, Obst) or Unified must be populated: the former is the paper's
// default two-R-tree configuration, the latter the §4.5 single-tree variant.
type Engine struct {
	// Data indexes the point set P (two-tree mode).
	Data *rtree.Tree
	// Obst indexes the obstacle set O (two-tree mode).
	Obst *rtree.Tree
	// Unified indexes P and O together (one-tree mode).
	Unified *rtree.Tree
	// Obstacles holds obstacle rectangles addressed by their R-tree item ID.
	Obstacles []geom.Rect
	// Kernel, when set, is the immutable flat-geometry kernel (SoA obstacle
	// store + static BVH) over Obstacles, shared read-only by every query on
	// this version. Query states hand it to their visibility graphs, which
	// then answer sight-line and window queries from the BVH filtered by
	// per-query loaded-obstacle marks instead of building a per-query R-tree.
	// Nil engines (tests, ablations) fall back to the per-graph R-tree path;
	// both paths return identical verdicts.
	Kernel *flatgeom.Kernel
	// Shared, when set, is a region-scoped corner-pair certificate table
	// built over Kernel by the execution planner and shared read-only across
	// the concurrent queries of one (epoch, region) group. Query states hand
	// it to their visibility graphs, which answer covered corner-pair
	// sight-line tests from its full-set blocker lists and fall back to the
	// exact kernel test for uncovered pairs — same verdicts, same answers,
	// same NPE/NOE/|SVG|/Reach accounting, only the test's cost changes.
	// Must have been built from Kernel at this same Epoch.
	Shared *flatgeom.CornerTable
	// Opts toggles individual optimizations (ablation switches).
	Opts Options

	// Epoch identifies the snapshot version this engine reads. Pooled query
	// states remember the epoch they last served; on mismatch their cached
	// geometry-derived structures (visibility graph, visible-region cache,
	// Dijkstra scratch) are discarded rather than reused, so an engine over a
	// new MVCC version never serves another version's stale geometry.
	Epoch uint64

	// States, when set, is a query-state pool shared across the engines of
	// successive snapshot versions, keeping scratch buffers warm over
	// mutations. When nil the engine pools privately (the pre-MVCC behavior,
	// used by batch workers and directly constructed engines).
	States *StatePool

	// Cancel, when set, is polled from the query hot loops (the Dijkstra
	// settle loop, IOR growth, CPLC candidate batches, and every best-first
	// point scan). A non-nil return aborts the in-flight query by panicking
	// with visgraph.Aborted carrying the returned error; the caller that
	// installed Cancel must recover it (see Aborted). Because an Engine may
	// serve concurrent queries, per-query cancellation requires a per-query
	// engine view — the public package builds one shallow view per Exec when
	// a context can fire.
	Cancel func() error

	// DataCounter and ObstCounter, when set, are consulted for page-fault
	// snapshots around each query. In one-tree mode only DataCounter is used.
	DataCounter *stats.PageCounter
	ObstCounter *stats.PageCounter

	// qsPool recycles per-query state (the local visibility graph, Dijkstra
	// scratch, caches) across queries on this engine when States is nil.
	qsPool sync.Pool
}

// StatePool pools query states across the engines of an MVCC version chain.
// It is safe for concurrent use.
type StatePool struct{ p sync.Pool }

// NewStatePool returns an empty pool.
func NewStatePool() *StatePool { return &StatePool{} }

// OneTree reports whether the engine runs in the single-R-tree mode.
func (e *Engine) OneTree() bool { return e.Unified != nil }

// queryState carries the per-query mutable machinery: the local visibility
// graph shared across all evaluated data points, the obstacle source, and
// the visible-region cache.
type queryState struct {
	eng   *Engine
	epoch uint64 // Engine.Epoch this state last served
	q     geom.Segment
	vg    *visgraph.Graph
	sID   visgraph.NodeID
	eID   visgraph.NodeID
	npe   int
	noe   int
	svgs  int // peak corner-node count, for DisableVGReuse accounting

	loadedUpTo float64

	// reach/unbounded accumulate the query's observed retrieval radius (see
	// stats.QueryMetrics.Reach): reach is the maximum distance at which the
	// index streams were consulted — every popped key, every load radius and
	// every termination threshold — and unbounded is set when a stream was
	// exhausted under an infinite threshold, meaning the scan would have
	// consumed candidates at any distance. Unlike loadedUpTo, these are never
	// reset mid-query (DisableVGReuse rewinds re-pop already-noted keys).
	reach     float64
	unbounded bool

	// Two-tree sources.
	ptIter   *rtree.NearestIter
	obstIter *rtree.NearestIter

	// One-tree source.
	unifIter *rtree.NearestIter
	pending  minheap.Heap[rtree.Item]

	vrCache map[visgraph.NodeID]vrEntry

	// search is IOR's final Dijkstra state for the current transient point;
	// CPLC resumes it (validity-checked) instead of re-running from scratch.
	search *visgraph.Search

	// Scratch buffers recycled across the per-point pipeline.
	pieceScratch    []piece     // splitPieces output
	cutScratch      []float64   // COkNN pairwise-crossing cuts
	spanScratch     []geom.Span // VisibleSpans output
	rayScratch      []float64   // VisibleSpans candidate cut parameters
	cplScratch      CPL         // computeCPL working list
	cplMergeScratch CPL         // mergeCandidateCPL ping-pong partner
	idScratch       []int32     // loadObstaclesUpTo batch collection

	// pool, when non-nil, is the per-query worker pool (Options.Workers);
	// it lives for one query — newQueryState starts it, release shuts it
	// down. The remaining fields are the CPLC prefetch scratch (parallel.go).
	pool        *visgraph.WorkerPool
	vrNeed      []visgraph.NodeID
	vrResults   []vrEntry
	vrLanes     []vrLaneScratch
	candScratch []visgraph.NodeID
}

func (e *Engine) newQueryState(q geom.Segment) *queryState {
	var qs *queryState
	if e.States != nil {
		qs, _ = e.States.p.Get().(*queryState)
	} else {
		qs, _ = e.qsPool.Get().(*queryState)
	}
	switch {
	case qs == nil:
		qs = &queryState{
			vg:      visgraph.New(),
			vrCache: make(map[visgraph.NodeID]vrEntry),
		}
	case qs.epoch != e.Epoch:
		// The snapshot advanced since this state last ran: its visibility
		// graph and caches were built against another version's geometry, so
		// drop them outright instead of trusting a capacity-retaining reset.
		qs.vg = visgraph.New()
		qs.vrCache = make(map[visgraph.NodeID]vrEntry)
		qs.pieceScratch, qs.cutScratch = nil, nil
		qs.spanScratch, qs.rayScratch = nil, nil
		qs.cplScratch, qs.cplMergeScratch = nil, nil
	}
	qs.epoch = e.Epoch
	qs.eng = e
	qs.q = q
	qs.vg.SetCheck(e.Cancel)
	qs.npe, qs.noe, qs.svgs = 0, 0, 0
	qs.loadedUpTo = 0
	qs.reach, qs.unbounded = 0, false
	qs.search = nil
	qs.ptIter, qs.obstIter, qs.unifIter = nil, nil, nil
	qs.pending.Reset()
	qs.resetVG()
	if e.Opts.Workers > 1 {
		qs.pool = visgraph.NewWorkerPool(e.Opts.Workers)
		qs.vg.SetPool(qs.pool)
	}
	if e.OneTree() {
		qs.unifIter = e.Unified.NewNearestIter(rtree.SegmentTarget{Seg: q})
	} else {
		qs.ptIter = e.Data.NewNearestIter(rtree.SegmentTarget{Seg: q})
		qs.obstIter = e.Obst.NewNearestIter(rtree.SegmentTarget{Seg: q})
	}
	return qs
}

// release returns a query state to the engine's pool (or the shared
// cross-version pool) so the next query reuses its visibility graph,
// Dijkstra scratch and caches. The caller must not touch qs afterwards.
func (e *Engine) release(qs *queryState) {
	// Do not pin this version's engine or trees in the pool: drop every
	// reference into the snapshot (iterators and the Dijkstra search hold
	// R-tree nodes alive) so retired MVCC versions can be collected.
	qs.eng = nil
	qs.ptIter, qs.obstIter, qs.unifIter = nil, nil, nil
	qs.search = nil
	qs.vg.SetCheck(nil) // do not keep a context closure alive in the pool
	if qs.pool != nil {
		qs.pool.Close()
		qs.pool = nil
		qs.vg.SetPool(nil)
	}
	qs.pending.Reset()
	if e.States != nil {
		e.States.p.Put(qs)
		return
	}
	e.qsPool.Put(qs)
}

// resetVG (re)initializes the local visibility graph to just the two anchor
// endpoints of q (paper §1: "Initially, the local visibility graph only
// contains two endpoints of a given query line segment"), retaining the
// graph's allocated capacity.
func (qs *queryState) resetVG() {
	qs.vg.Reset()
	if qs.eng.Kernel != nil {
		qs.vg.SetKernel(qs.eng.Kernel)
		if qs.eng.Shared != nil {
			qs.vg.SetShared(qs.eng.Shared)
		}
	}
	qs.sID = qs.vg.AddPoint(qs.q.A, visgraph.KindAnchor)
	qs.eID = qs.vg.AddPoint(qs.q.B, visgraph.KindAnchor)
	clear(qs.vrCache)
}

// noteReach widens the query's observed retrieval radius to d. An infinite
// d marks the query unbounded.
func (qs *queryState) noteReach(d float64) {
	if math.IsInf(d, 1) {
		qs.unbounded = true
		return
	}
	if d > qs.reach {
		qs.reach = d
	}
}

// noteStop records a termination-threshold consultation: the best-first scan
// compared the next candidate's lower bound against thresh and stopped.
// streamOK reports whether the stream still had a candidate. Stopping on an
// exhausted stream under an infinite threshold means the scan would have
// accepted candidates at any distance, so the query is unbounded.
func (qs *queryState) noteStop(thresh float64, streamOK bool) {
	if math.IsInf(thresh, 1) {
		if !streamOK {
			qs.unbounded = true
		}
		return
	}
	qs.noteReach(thresh)
}

// reachValue returns the accumulated Reach metric (+Inf when unbounded).
func (qs *queryState) reachValue() float64 {
	if qs.unbounded {
		return math.Inf(1)
	}
	return qs.reach
}

// addObstacleToVG inserts the obstacle with the given R-tree item ID into
// the local graph, tracking NOE. Each insertion touches every node's
// adjacency (edge invalidation plus four corner AddPoints), so this is also
// a cancellation checkpoint: one IOR round may load thousands of obstacles
// back to back.
func (qs *queryState) addObstacleToVG(id int32) {
	qs.poll()
	if qs.eng.Kernel != nil {
		qs.vg.AddObstacleID(id)
	} else {
		qs.vg.AddObstacle(qs.eng.Obstacles[id])
	}
	qs.noe++
}

// loadObstaclesUpTo pulls every not-yet-loaded obstacle with
// mindist(o, q) <= d into the local visibility graph (Algorithm 1 lines
// 6-12) and returns how many were added. In one-tree mode the shared heap
// also surfaces data points, which are parked for the main loop (§4.5).
func (qs *queryState) loadObstaclesUpTo(d float64) int {
	// With a kernel attached the round's obstacles go in as one batch:
	// visgraph.AddObstacleIDs produces the identical graph with a single
	// edge-invalidation pass. NOE still counts every obstacle.
	ids := qs.idScratch[:0]
	batched := qs.eng.Kernel != nil
	n := 0
	qs.noteReach(d)
	if qs.eng.OneTree() {
		for {
			bound, ok := qs.unifIter.PeekDist()
			if !ok || bound > d {
				break
			}
			item, key, _ := qs.unifIter.Next()
			if item.Kind == rtree.KindObstacle {
				if batched {
					qs.poll()
					ids = append(ids, item.ID)
					qs.noe++
				} else {
					qs.addObstacleToVG(item.ID)
				}
				n++
			} else {
				qs.pending.PushTie(key, item.TieKey(), item)
			}
		}
	} else {
		for {
			bound, ok := qs.obstIter.PeekDist()
			if !ok || bound > d {
				break
			}
			item, _, _ := qs.obstIter.Next()
			if batched {
				qs.poll()
				ids = append(ids, item.ID)
				qs.noe++
			} else {
				qs.addObstacleToVG(item.ID)
			}
			n++
		}
	}
	if batched {
		qs.vg.AddObstacleIDs(ids)
		qs.idScratch = ids[:0]
	}
	return n
}

// loadAnyObstacle force-loads the next obstacle regardless of distance,
// used when the current graph leaves an endpoint unreachable. It reports
// whether an obstacle was loaded.
func (qs *queryState) loadAnyObstacle() bool {
	if qs.eng.OneTree() {
		for {
			item, key, ok := qs.unifIter.Next()
			if !ok {
				qs.unbounded = true // would have taken an obstacle at any distance
				return false
			}
			if item.Kind == rtree.KindObstacle {
				qs.loadedUpTo = math.Max(qs.loadedUpTo, key)
				qs.noteReach(key)
				qs.addObstacleToVG(item.ID)
				return true
			}
			qs.pending.PushTie(key, item.TieKey(), item)
		}
	}
	item, key, ok := qs.obstIter.Next()
	if !ok {
		qs.unbounded = true // would have taken an obstacle at any distance
		return false
	}
	qs.loadedUpTo = math.Max(qs.loadedUpTo, key)
	qs.noteReach(key)
	qs.addObstacleToVG(item.ID)
	return true
}

// peekPointBound returns a lower bound on the mindist of the next data
// point. In one-tree mode it drains any obstacles sitting ahead of the next
// point into the visibility graph (they have been paid for already); the
// returned bound is therefore a genuine retrieval event — obstacles up to it
// entered the graph — and widens reach, and exhausting the unified stream
// while hunting for a point drains every remaining obstacle, which marks
// the query unbounded.
func (qs *queryState) peekPointBound() (float64, bool) {
	if !qs.eng.OneTree() {
		return qs.ptIter.PeekDist()
	}
	for {
		bound, ok := qs.unifIter.PeekDist()
		if !qs.pending.Empty() && (!ok || qs.pending.PeekKey() <= bound) {
			qs.noteReach(qs.pending.PeekKey())
			return qs.pending.PeekKey(), true
		}
		if !ok {
			qs.unbounded = true
			return 0, false
		}
		item, key, _ := qs.unifIter.Next()
		if item.Kind == rtree.KindObstacle {
			qs.loadedUpTo = math.Max(qs.loadedUpTo, key)
			qs.addObstacleToVG(item.ID)
			continue
		}
		qs.pending.PushTie(key, item.TieKey(), item)
	}
}

// nextPoint pops the next data point in ascending mindist(p, q) order.
func (qs *queryState) nextPoint() (rtree.Item, float64, bool) {
	if !qs.eng.OneTree() {
		item, key, ok := qs.ptIter.Next()
		if ok {
			qs.noteReach(key)
		}
		return item, key, ok
	}
	if _, ok := qs.peekPointBound(); !ok {
		return rtree.Item{}, 0, false
	}
	key, item := qs.pending.Pop()
	qs.noteReach(key)
	return item, key, true
}

// ior is Algorithm 1 (Incremental Obstacle Retrieval). It grows the local
// visibility graph until the shortest paths from the transient node pNode to
// both endpoints of q stabilize, which by Lemma 3 makes them the true
// shortest paths and by Theorem 2/Lemma 4 guarantees every obstacle in the
// search range SR(p, q) is loaded. It returns the obstructed distances to S
// and E (+Inf when p is sealed off from q by obstacles).
func (qs *queryState) ior(pNode visgraph.NodeID) (dS, dE float64) {
	for {
		qs.poll()
		// Multi-target Dijkstra: stop as soon as both anchors are settled
		// instead of settling the whole graph. The search (heap included) is
		// kept so CPLC can resume it for the same source when the graph has
		// not changed since.
		s := qs.vg.NewSearch(pNode)
		s.SettleTargets(qs.sID, qs.eID)
		qs.search = s
		dS, dE = s.Dist(qs.sID), s.Dist(qs.eID)
		dp := math.Max(dS, dE)
		if math.IsInf(dp, 1) {
			// The graph loaded so far seals p off; more obstacles may open a
			// corner route. Pull one and retry until the source is exhausted.
			if !qs.loadAnyObstacle() {
				return dS, dE
			}
			continue
		}
		if dp <= qs.loadedUpTo+interval.Eps {
			return dS, dE
		}
		n := qs.loadObstaclesUpTo(dp)
		qs.loadedUpTo = math.Max(qs.loadedUpTo, dp)
		if n == 0 {
			return dS, dE
		}
	}
}

// visibleRegion returns VR(node, q) (Definition 2) as an interval set,
// cached per node until the obstacle set changes. Transient nodes are never
// cached because their IDs are recycled.
func (qs *queryState) visibleRegion(id visgraph.NodeID) interval.Set {
	p := qs.vg.Point(id)
	all := qs.vg.Obstacles()
	if s, ok := qs.vrLookup(id, p, all); ok {
		return s
	}
	bb := geom.RectFromPoints(p, qs.q.A, qs.q.B)
	obs := qs.vg.ObstaclesNear(bb)
	var spans []geom.Span
	spans, qs.rayScratch = geom.VisibleSpansInto(qs.spanScratch, qs.rayScratch, p, qs.q, obs)
	qs.spanScratch = spans
	s := interval.FromSpans(spans) // FromSpans copies, so the scratch is safe
	qs.vrCache[id] = vrEntry{set: s, bb: bb, px: p.X, py: p.Y, obsLen: len(all)}
	return s
}

// vrLookup consults the visible-region cache for node id at position p
// against the current obstacle slice. The cached spans stay exact while no
// obstacle inserted since the entry was (re)validated intersects its
// window: VisibleSpansInto is a pure, obstacle-order-insensitive function
// of (p, q, window set), and the window set — ObstaclesNear(bb) — can only
// change when a new obstacle intersects bb (the obstacle set grows
// append-only within a query). The watermark advances after each clean
// check, so every (entry, obstacle) pair is tested at most once. The point
// check guards recycled transient node IDs.
func (qs *queryState) vrLookup(id visgraph.NodeID, p geom.Point, all []geom.Rect) (interval.Set, bool) {
	e, ok := qs.vrCache[id]
	if !ok || e.px != p.X || e.py != p.Y {
		return nil, false
	}
	for i := e.obsLen; i < len(all); i++ {
		if all[i].Intersects(e.bb) {
			return nil, false
		}
	}
	e.obsLen = len(all)
	qs.vrCache[id] = e
	return e.set, true
}

// vrEntry is one cached visible region: the interval set plus the window
// box, viewpoint and obstacle-count watermark that prove it still exact
// (see visibleRegion).
type vrEntry struct {
	set    interval.Set
	bb     geom.Rect
	px, py float64
	obsLen int
}

// svgSize returns the |SVG| metric: the number of obstacle-corner vertices
// currently in the local visibility graph.
func (qs *queryState) svgSize() int {
	n := qs.vg.NumCornerNodes()
	if n > qs.svgs {
		qs.svgs = n
	}
	return qs.svgs
}
