package core

import (
	"math"

	"connquery/internal/geom"
)

// splitEps is the parametric tolerance for split-point computation.
const splitEps = 1e-9

// piece is a sub-span with a fixed winner between two distance functions.
type piece struct {
	Span      geom.Span
	FirstWins bool
}

// splitPieces implements the paper's quadratic split-point computation
// (§3, Theorem 1 and Cases 1-4). Given two distance functions
// f1(t) = d1 + dist(u, q(t)) and f2(t) = d2 + dist(v, q(t)) over span, it
// partitions span into at most three maximal pieces, each owned by the
// pointwise-smaller function. Theorem 1 guarantees at most two crossings.
//
// When useBisection is set, the crossings are located by a numeric grid scan
// plus bisection instead of the closed-form quadratic (ablation baseline).
func splitPieces(q geom.Segment, span geom.Span, f1, f2 distFn, useBisection bool) []piece {
	return appendSplitPieces(nil, q, span, f1, f2, useBisection)
}

// appendSplitPieces is splitPieces appending into dst, so hot callers can
// recycle a scratch buffer. The result aliases dst's storage when it fits.
func appendSplitPieces(dst []piece, q geom.Segment, span geom.Span, f1, f2 distFn, useBisection bool) []piece {
	var cutsArr [8]float64 // 2 endpoints + Theorem 1's <= 2 roots, with room
	cuts := append(cutsArr[:0], span.Lo)
	if useBisection {
		cuts = appendBisectionCrossings(cuts, q, span, f1, f2)
	} else {
		cuts = appendQuadraticCrossings(cuts, q, span, f1, f2)
	}
	cuts = append(cuts, span.Hi)
	// cuts is sorted by construction: span.Lo leads, the appended crossings
	// arrive sorted and clamped into [span.Lo, span.Hi], and span.Hi closes.

	base := len(dst)
	pieces := dst
	for i := 1; i < len(cuts); i++ {
		cell := geom.Span{Lo: cuts[i-1], Hi: cuts[i]}
		if cell.Len() <= splitEps {
			continue
		}
		mid := cell.Mid()
		firstWins := f1.eval(q, mid) <= f2.eval(q, mid)
		if n := len(pieces); n > base && pieces[n-1].FirstWins == firstWins {
			pieces[n-1].Span.Hi = cell.Hi
		} else {
			pieces = append(pieces, piece{cell, firstWins})
		}
	}
	if len(pieces) == base {
		// The whole span collapsed numerically; decide by the midpoint.
		mid := span.Mid()
		pieces = append(pieces, piece{span, f1.eval(q, mid) <= f2.eval(q, mid)})
	} else {
		// Snap the outer boundaries exactly back to the input span.
		pieces[base].Span.Lo = span.Lo
		pieces[len(pieces)-1].Span.Hi = span.Hi
	}
	return pieces
}

// quadraticCrossings solves f1(t) = f2(t) on span in closed form.
//
// Writing u = f1's control point, v = f2's, A(t) = dist(u, q(t)),
// B(t) = dist(v, q(t)) and d = d2 - d1, the equation is A - B = d — exactly
// the paper's Equation (1) in the segment's own parameter space. Because
// A^2 and B^2 share the quadratic coefficient |q.B - q.A|^2, the difference
// L(t) = A^2 - B^2 is linear in t; squaring A = B + d twice yields
//
//	(L(t) - d^2)^2 = 4 d^2 B(t)^2,
//
// a genuine quadratic in t (the paper's Theorem 1). Spurious roots
// introduced by squaring are rejected by back-substitution.
func quadraticCrossings(q geom.Segment, span geom.Span, f1, f2 distFn) []float64 {
	return appendQuadraticCrossings(nil, q, span, f1, f2)
}

// appendQuadraticCrossings appends the (sorted, deduplicated) crossings to
// dst and returns dst. It never appends more than two roots (Theorem 1).
func appendQuadraticCrossings(dst []float64, q geom.Segment, span geom.Span, f1, f2 distFn) []float64 {
	u, v := f1.CP, f2.CP
	d := f2.Base - f1.Base

	D := q.Dir()
	alpha := D.Norm2()
	if alpha <= geom.Eps*geom.Eps {
		return dst // degenerate query segment: constant functions
	}
	su := q.A.Sub(u)
	sv := q.A.Sub(v)
	// A^2(t) = alpha t^2 + bu t + gu ; B^2(t) = alpha t^2 + bv t + gv
	bu, gu := 2*D.Dot(su), su.Norm2()
	bv, gv := 2*D.Dot(sv), sv.Norm2()
	// L(t) = A^2 - B^2 = L1 t + L0
	L1, L0 := bu-bv, gu-gv

	accept := func(t float64) (float64, bool) {
		if t < span.Lo-splitEps || t > span.Hi+splitEps {
			return 0, false
		}
		t = math.Max(span.Lo, math.Min(span.Hi, t))
		// Back-substitute: require A - B = d within a scale-aware tolerance.
		a := geom.Dist(u, q.At(t))
		b := geom.Dist(v, q.At(t))
		if math.Abs((a-b)-d) > 1e-6*(1+a+b+math.Abs(d)) {
			return 0, false
		}
		return t, true
	}

	if math.Abs(d) <= geom.Eps {
		// A = B: the linear equation L(t) = 0.
		if math.Abs(L1) > geom.Eps*(1+math.Abs(L0)) {
			if t, ok := accept(-L0 / L1); ok {
				dst = append(dst, t)
			}
		}
		return dst
	}

	// (L1 t + (L0 - d^2))^2 = 4 d^2 (alpha t^2 + bv t + gv)
	c := L0 - d*d
	qa := L1*L1 - 4*d*d*alpha
	qb := 2*L1*c - 4*d*d*bv
	qc := c*c - 4*d*d*gv

	rr, n := solveQuadratic(qa, qb, qc)
	base := len(dst)
	for _, t := range rr[:n] {
		if rt, ok := accept(t); ok {
			// Roots arrive sorted; drop a second root within splitEps of the
			// first (the old dedupeSorted rule).
			if len(dst) > base && rt-dst[len(dst)-1] <= splitEps {
				continue
			}
			dst = append(dst, rt)
		}
	}
	return dst
}

// solveQuadratic returns the real roots of qa t^2 + qb t + qc = 0 (sorted,
// n of them) using the numerically stable citardauq form for the smaller
// root.
func solveQuadratic(qa, qb, qc float64) (roots [2]float64, n int) {
	scale := math.Abs(qa) + math.Abs(qb) + math.Abs(qc)
	if scale == 0 {
		return roots, 0
	}
	if math.Abs(qa) <= 1e-14*scale {
		// Effectively linear.
		if math.Abs(qb) <= 1e-14*scale {
			return roots, 0
		}
		roots[0] = -qc / qb
		return roots, 1
	}
	disc := qb*qb - 4*qa*qc
	if disc < 0 {
		if disc > -1e-10*scale*scale {
			disc = 0 // grazing contact
		} else {
			return roots, 0
		}
	}
	sq := math.Sqrt(disc)
	var q float64
	if qb >= 0 {
		q = -(qb + sq) / 2
	} else {
		q = -(qb - sq) / 2
	}
	r1 := q / qa
	if q == 0 {
		roots[0] = r1
		return roots, 1
	}
	r2 := qc / q
	if r1 > r2 {
		r1, r2 = r2, r1
	}
	roots[0], roots[1] = r1, r2
	return roots, 2
}

// appendBisectionCrossings locates sign changes of g(t) = f1(t) - f2(t) by a
// grid scan followed by bisection, appending the (sorted, deduplicated)
// roots to dst. It is the ablation baseline for the quadratic solver:
// simpler but slower and only grid-resolution complete.
func appendBisectionCrossings(dst []float64, q geom.Segment, span geom.Span, f1, f2 distFn) []float64 {
	const grid = 128
	g := func(t float64) float64 { return f1.eval(q, t) - f2.eval(q, t) }
	base := len(dst)
	prevT := span.Lo
	prevG := g(prevT)
	for i := 1; i <= grid; i++ {
		t := span.Lo + span.Len()*float64(i)/grid
		cur := g(t)
		if (prevG < 0 && cur >= 0) || (prevG > 0 && cur <= 0) {
			lo, hi := prevT, t
			for iter := 0; iter < 60; iter++ {
				mid := (lo + hi) / 2
				if gm := g(mid); (gm < 0) == (prevG < 0) {
					lo = mid
				} else {
					hi = mid
				}
			}
			if r := (lo + hi) / 2; len(dst) == base || r-dst[len(dst)-1] > splitEps {
				dst = append(dst, r)
			}
		}
		prevT, prevG = t, cur
	}
	return dst
}
