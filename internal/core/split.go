package core

import (
	"math"
	"sort"

	"connquery/internal/geom"
)

// splitEps is the parametric tolerance for split-point computation.
const splitEps = 1e-9

// piece is a sub-span with a fixed winner between two distance functions.
type piece struct {
	Span      geom.Span
	FirstWins bool
}

// splitPieces implements the paper's quadratic split-point computation
// (§3, Theorem 1 and Cases 1-4). Given two distance functions
// f1(t) = d1 + dist(u, q(t)) and f2(t) = d2 + dist(v, q(t)) over span, it
// partitions span into at most three maximal pieces, each owned by the
// pointwise-smaller function. Theorem 1 guarantees at most two crossings.
//
// When useBisection is set, the crossings are located by a numeric grid scan
// plus bisection instead of the closed-form quadratic (ablation baseline).
func splitPieces(q geom.Segment, span geom.Span, f1, f2 distFn, useBisection bool) []piece {
	var roots []float64
	if useBisection {
		roots = bisectionCrossings(q, span, f1, f2)
	} else {
		roots = quadraticCrossings(q, span, f1, f2)
	}
	cuts := make([]float64, 0, len(roots)+2)
	cuts = append(cuts, span.Lo)
	cuts = append(cuts, roots...)
	cuts = append(cuts, span.Hi)
	sort.Float64s(cuts)

	var pieces []piece
	for i := 1; i < len(cuts); i++ {
		cell := geom.Span{Lo: cuts[i-1], Hi: cuts[i]}
		if cell.Len() <= splitEps {
			continue
		}
		mid := cell.Mid()
		firstWins := f1.eval(q, mid) <= f2.eval(q, mid)
		if n := len(pieces); n > 0 && pieces[n-1].FirstWins == firstWins {
			pieces[n-1].Span.Hi = cell.Hi
		} else {
			pieces = append(pieces, piece{cell, firstWins})
		}
	}
	if len(pieces) == 0 {
		// The whole span collapsed numerically; decide by the midpoint.
		mid := span.Mid()
		pieces = append(pieces, piece{span, f1.eval(q, mid) <= f2.eval(q, mid)})
	} else {
		// Snap the outer boundaries exactly back to the input span.
		pieces[0].Span.Lo = span.Lo
		pieces[len(pieces)-1].Span.Hi = span.Hi
	}
	return pieces
}

// quadraticCrossings solves f1(t) = f2(t) on span in closed form.
//
// Writing u = f1's control point, v = f2's, A(t) = dist(u, q(t)),
// B(t) = dist(v, q(t)) and d = d2 - d1, the equation is A - B = d — exactly
// the paper's Equation (1) in the segment's own parameter space. Because
// A^2 and B^2 share the quadratic coefficient |q.B - q.A|^2, the difference
// L(t) = A^2 - B^2 is linear in t; squaring A = B + d twice yields
//
//	(L(t) - d^2)^2 = 4 d^2 B(t)^2,
//
// a genuine quadratic in t (the paper's Theorem 1). Spurious roots
// introduced by squaring are rejected by back-substitution.
func quadraticCrossings(q geom.Segment, span geom.Span, f1, f2 distFn) []float64 {
	u, v := f1.CP, f2.CP
	d := f2.Base - f1.Base

	D := q.Dir()
	alpha := D.Norm2()
	if alpha <= geom.Eps*geom.Eps {
		return nil // degenerate query segment: constant functions
	}
	su := q.A.Sub(u)
	sv := q.A.Sub(v)
	// A^2(t) = alpha t^2 + bu t + gu ; B^2(t) = alpha t^2 + bv t + gv
	bu, gu := 2*D.Dot(su), su.Norm2()
	bv, gv := 2*D.Dot(sv), sv.Norm2()
	// L(t) = A^2 - B^2 = L1 t + L0
	L1, L0 := bu-bv, gu-gv

	accept := func(t float64) (float64, bool) {
		if t < span.Lo-splitEps || t > span.Hi+splitEps {
			return 0, false
		}
		t = math.Max(span.Lo, math.Min(span.Hi, t))
		// Back-substitute: require A - B = d within a scale-aware tolerance.
		a := geom.Dist(u, q.At(t))
		b := geom.Dist(v, q.At(t))
		if math.Abs((a-b)-d) > 1e-6*(1+a+b+math.Abs(d)) {
			return 0, false
		}
		return t, true
	}

	var roots []float64
	if math.Abs(d) <= geom.Eps {
		// A = B: the linear equation L(t) = 0.
		if math.Abs(L1) > geom.Eps*(1+math.Abs(L0)) {
			if t, ok := accept(-L0 / L1); ok {
				roots = append(roots, t)
			}
		}
		return dedupeSorted(roots)
	}

	// (L1 t + (L0 - d^2))^2 = 4 d^2 (alpha t^2 + bv t + gv)
	c := L0 - d*d
	qa := L1*L1 - 4*d*d*alpha
	qb := 2*L1*c - 4*d*d*bv
	qc := c*c - 4*d*d*gv

	for _, t := range solveQuadratic(qa, qb, qc) {
		if rt, ok := accept(t); ok {
			roots = append(roots, rt)
		}
	}
	return dedupeSorted(roots)
}

// solveQuadratic returns the real roots of qa t^2 + qb t + qc = 0 using the
// numerically stable citardauq form for the smaller root.
func solveQuadratic(qa, qb, qc float64) []float64 {
	scale := math.Abs(qa) + math.Abs(qb) + math.Abs(qc)
	if scale == 0 {
		return nil
	}
	if math.Abs(qa) <= 1e-14*scale {
		// Effectively linear.
		if math.Abs(qb) <= 1e-14*scale {
			return nil
		}
		return []float64{-qc / qb}
	}
	disc := qb*qb - 4*qa*qc
	if disc < 0 {
		if disc > -1e-10*scale*scale {
			disc = 0 // grazing contact
		} else {
			return nil
		}
	}
	sq := math.Sqrt(disc)
	var q float64
	if qb >= 0 {
		q = -(qb + sq) / 2
	} else {
		q = -(qb - sq) / 2
	}
	r1 := q / qa
	if q == 0 {
		return []float64{r1}
	}
	r2 := qc / q
	if r1 > r2 {
		r1, r2 = r2, r1
	}
	return []float64{r1, r2}
}

// bisectionCrossings locates sign changes of g(t) = f1(t) - f2(t) by a grid
// scan followed by bisection. It is the ablation baseline for the quadratic
// solver: simpler but slower and only grid-resolution complete.
func bisectionCrossings(q geom.Segment, span geom.Span, f1, f2 distFn) []float64 {
	const grid = 128
	g := func(t float64) float64 { return f1.eval(q, t) - f2.eval(q, t) }
	var roots []float64
	prevT := span.Lo
	prevG := g(prevT)
	for i := 1; i <= grid; i++ {
		t := span.Lo + span.Len()*float64(i)/grid
		cur := g(t)
		if (prevG < 0 && cur >= 0) || (prevG > 0 && cur <= 0) {
			lo, hi := prevT, t
			for iter := 0; iter < 60; iter++ {
				mid := (lo + hi) / 2
				if gm := g(mid); (gm < 0) == (prevG < 0) {
					lo = mid
				} else {
					hi = mid
				}
			}
			roots = append(roots, (lo+hi)/2)
		}
		prevT, prevG = t, cur
	}
	return dedupeSorted(roots)
}

func dedupeSorted(roots []float64) []float64 {
	if len(roots) < 2 {
		return roots
	}
	sort.Float64s(roots)
	out := roots[:1]
	for _, r := range roots[1:] {
		if r-out[len(out)-1] > splitEps {
			out = append(out, r)
		}
	}
	return out
}
