package core

import (
	"math"
	"math/rand"
	"testing"

	"connquery/internal/geom"
)

// COkNN must give identical answers in one-tree and two-tree modes.
func TestCOkNNOneTreeMatchesTwoTree(t *testing.T) {
	r := rand.New(rand.NewSource(811))
	for trial := 0; trial < 15; trial++ {
		k := 1 + r.Intn(3)
		sc := randScene(r, k+3+r.Intn(15), 1+r.Intn(7), 100)
		two := sc.engine(Options{}, false)
		one := sc.engine(Options{}, true)
		r2, _ := two.COkNN(sc.q, k)
		r1, _ := one.COkNN(sc.q, k)
		for s := 0; s <= 40; s++ {
			tt := float64(s) / 40
			ids1, ok1 := r1.OwnerSetAt(tt)
			ids2, ok2 := r2.OwnerSetAt(tt)
			if ok1 != ok2 {
				t.Fatalf("trial %d t=%v: coverage mismatch", trial, tt)
			}
			near := false
			for _, res := range []*KResult{r1, r2} {
				for _, tu := range res.Tuples {
					if math.Abs(tt-tu.Span.Lo) < 1e-4 || math.Abs(tt-tu.Span.Hi) < 1e-4 {
						near = true
					}
				}
			}
			if near {
				continue
			}
			if !equalIDSets(ids1, ids2) {
				t.Fatalf("trial %d t=%v: 1T %v vs 2T %v", trial, tt, ids1, ids2)
			}
		}
	}
}

// The COkNN termination bound rlkMax must be infinite while any interval
// has fewer than k owners and finite (and correct) once all do.
func TestRLKMaxSemantics(t *testing.T) {
	q := randScene(rand.New(rand.NewSource(813)), 1, 0, 100).q
	fn := func(x, y, base float64) Owner {
		return Owner{PID: 0, P: q.A, Fn: distFn{CP: q.At(0.5), Base: base}}
	}
	kl := []kEntry{{Span: geom.Span{Lo: 0, Hi: 1}, Owners: []Owner{fn(0, 0, 3)}}}
	if !math.IsInf(rlkMax(q, kl, 2), 1) {
		t.Fatal("under-filled entry should give +Inf bound")
	}
	bound := rlkMax(q, kl, 1)
	want := math.Max(3+q.At(0.5).Sub(q.A).Norm(), 3+q.At(0.5).Sub(q.B).Norm())
	if math.Abs(bound-want) > 1e-9 {
		t.Fatalf("bound = %v, want %v", bound, want)
	}
}
