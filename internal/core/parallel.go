package core

import (
	"math"

	"connquery/internal/geom"
	"connquery/internal/interval"
	"connquery/internal/visgraph"
)

// cplLookahead is how many CPLC candidates are settled ahead of the merge
// so their visible regions can be computed on the worker pool. The merge
// consumes them under the live Lemma 7 bound, so the lookahead only risks
// computing (and caching) a few regions the sequential scan would never
// reach — wasted work bounded by one chunk, never a changed answer.
const cplLookahead = 16

// vrLaneScratch is one pool lane's private buffers for visible-region
// prefetch.
type vrLaneScratch struct {
	obs   []geom.Rect
	spans []geom.Span
	cuts  []float64
}

// computeCPLPar is computeCPL on the worker pool: identical candidate
// consumption — same (distance, NodeID) order, same live Lemma 7 cutoff,
// same merges — but candidates are settled a chunk ahead and their visible
// regions (and their Dijkstra predecessors') are computed concurrently into
// the cache first, so the serial merge loop finds every region already
// cached. VisibleSpansInto is pure and each lane uses private scratch, so
// the cached sets are bit-identical to on-demand computation.
//
// The lookahead settles under the bound current at chunk start; cplMax is
// non-increasing as candidates merge in (folding a candidate can only lower
// the distance envelope), so the chunk is a superset, in order, of what the
// sequential scan would consume — and the consume loop re-checks the live
// bound per candidate, returning at exactly the sequential termination
// point. Extra settled nodes and prefetched regions are dead weight, not
// divergence: settling never loads obstacles or points (NPE/NOE/|SVG|
// untouched) and the cache tolerates unused entries.
func (qs *queryState) computeCPLPar(pNode visgraph.NodeID) CPL {
	s := qs.search
	if s == nil || !s.Valid() || s.Src() != pNode {
		s = qs.vg.NewSearch(pNode)
		qs.search = s
	}
	cpl := append(qs.cplScratch[:0], CPLEntry{Span: geom.Span{Lo: 0, Hi: 1}})
	done := func() CPL {
		qs.cplScratch = cpl[:0]
		out := make(CPL, len(cpl))
		copy(out, cpl)
		return out
	}
	for {
		qs.poll()
		// Fill the lookahead chunk: whole settle batches, anchors skipped,
		// stopping once a candidate reaches the conservative bound (every
		// later candidate is at least as far and terminates too).
		cands := qs.candScratch[:0]
		bound := math.Inf(1)
		if !qs.eng.Opts.DisableLemma7 {
			bound = cplMax(qs.q, cpl)
		}
		exhausted := false
		for len(cands) < cplLookahead {
			batch := s.SettleBatch()
			if batch == nil {
				exhausted = true
				break
			}
			past := false
			for _, id := range batch {
				if qs.vg.Kind(id) == visgraph.KindAnchor {
					continue
				}
				cands = append(cands, id)
				past = past || s.Dist(id) >= bound
			}
			if past {
				break
			}
		}
		qs.candScratch = cands[:0]
		if len(cands) == 0 {
			if exhausted {
				return done() // reachable component exhausted
			}
			continue // batch of anchors only; keep settling
		}
		qs.prefetchVRs(cands, pNode, s)
		// Consume exactly like the sequential scan.
		for _, id := range cands {
			qs.poll()
			d := s.Dist(id)
			if !qs.eng.Opts.DisableLemma7 && d >= cplMax(qs.q, cpl) {
				return done() // Lemma 7: no farther node can enter the CPL
			}
			region := qs.visibleRegion(id)
			if id != pNode {
				if u := s.Prev(id); u != visgraph.Invalid {
					uRegion := qs.visibleRegion(u)
					region = region.Subtract(uRegion)
					if !qs.eng.Opts.DisableLemma6 {
						region = refineLemma6(qs.q, region, uRegion,
							qs.vg.Point(u), qs.vg.Point(id))
					}
				}
			}
			if region.Empty() {
				continue
			}
			fn := distFn{CP: qs.vg.Point(id), Base: d}
			cpl = qs.mergeCandidateCPL(cpl, region, fn)
		}
		if exhausted {
			return done()
		}
	}
}

// prefetchVRs computes the visible regions of the chunk's candidates and
// their Dijkstra predecessors on the worker pool and installs them in the
// cache. Cache-clean nodes are skipped (their watermark advances, exactly
// as the on-demand lookup would). The graph is quiescent for the whole
// CPLC scan, so lanes read it freely; each lane owns its scratch and each
// item its result slot.
func (qs *queryState) prefetchVRs(cands []visgraph.NodeID, pNode visgraph.NodeID, s *visgraph.Search) {
	all := qs.vg.Obstacles()
	need := qs.vrNeed[:0]
	add := func(id visgraph.NodeID) {
		if _, ok := qs.vrLookup(id, qs.vg.Point(id), all); ok {
			return
		}
		for _, x := range need {
			if x == id {
				return
			}
		}
		need = append(need, id)
	}
	for _, id := range cands {
		add(id)
		if id != pNode {
			if u := s.Prev(id); u != visgraph.Invalid {
				add(u)
			}
		}
	}
	qs.vrNeed = need[:0]
	if len(need) < 2 {
		return // nothing to overlap; the on-demand path computes it
	}
	if cap(qs.vrResults) < len(need) {
		qs.vrResults = make([]vrEntry, len(need))
	}
	results := qs.vrResults[:len(need)]
	for len(qs.vrLanes) < qs.pool.Workers() {
		qs.vrLanes = append(qs.vrLanes, vrLaneScratch{})
	}
	qs.pool.Run(len(need), func(w, i int) {
		id := need[i]
		p := qs.vg.Point(id)
		bb := geom.RectFromPoints(p, qs.q.A, qs.q.B)
		sc := &qs.vrLanes[w]
		sc.obs = qs.vg.AppendObstaclesNear(sc.obs[:0], bb)
		sc.spans, sc.cuts = geom.VisibleSpansInto(sc.spans, sc.cuts, p, qs.q, sc.obs)
		results[i] = vrEntry{set: interval.FromSpans(sc.spans), bb: bb,
			px: p.X, py: p.Y, obsLen: len(all)}
	})
	for i, id := range need {
		qs.vrCache[id] = results[i]
	}
}
