package core

import (
	"math"
	"slices"

	"connquery/internal/geom"
	"connquery/internal/interval"
	"connquery/internal/visgraph"
)

// computeCPL is Algorithm 2 (Control Point List Computation). It traverses
// the local visibility graph from the transient node pNode in ascending
// obstructed distance, and for each node v considers it as a candidate
// control point over the part of q it can serve: its visible region minus
// its Dijkstra predecessor's visible region (Lemma 5). Candidates are folded
// into the control point list with the quadratic Split function; Lemma 7's
// CPLMAX bound terminates the scan.
//
// Instead of a full Dijkstra followed by a sort, the scan resumes IOR's
// final search for pNode (the graph is unchanged between IOR's convergence
// and this call, which the search's validity check asserts): Dijkstra
// already settles nodes in ascending distance, so candidates are consumed
// as they settle — in batches of equal distance sorted by NodeID, exactly
// the (distance, id) order the sorted scan used — and nodes beyond Lemma
// 7's cutoff are never settled at all.
//
// IOR must have run for pNode first so that every obstacle in SR(p, q) is in
// the graph; Theorem 2 then guarantees the true shortest path to any point
// of q only turns at loaded vertices, so the produced CPL is exact.
func (qs *queryState) computeCPL(pNode visgraph.NodeID) CPL {
	if qs.pool != nil {
		// Same scan with the per-candidate visible regions computed a chunk
		// ahead on the worker pool; bit-identical output (see parallel.go).
		return qs.computeCPLPar(pNode)
	}
	s := qs.search
	if s == nil || !s.Valid() || s.Src() != pNode {
		s = qs.vg.NewSearch(pNode)
		qs.search = s
	}
	cpl := append(qs.cplScratch[:0], CPLEntry{Span: geom.Span{Lo: 0, Hi: 1}})
	done := func() CPL {
		qs.cplScratch = cpl[:0] // keep the buffer; hand out a private copy
		out := make(CPL, len(cpl))
		copy(out, cpl)
		return out
	}
	for {
		qs.poll()
		batch := s.SettleBatch()
		if batch == nil {
			return done() // reachable component exhausted
		}
		for _, id := range batch {
			qs.poll() // visible-region computation per candidate is costly
			if qs.vg.Kind(id) == visgraph.KindAnchor {
				continue
			}
			d := s.Dist(id)
			if !qs.eng.Opts.DisableLemma7 && d >= cplMax(qs.q, cpl) {
				return done() // Lemma 7: no farther node can enter the CPL
			}
			region := qs.visibleRegion(id)
			if id != pNode {
				if u := s.Prev(id); u != visgraph.Invalid {
					// Lemma 5: v cannot control any interval its predecessor
					// also sees.
					uRegion := qs.visibleRegion(u)
					region = region.Subtract(uRegion)
					if !qs.eng.Opts.DisableLemma6 {
						region = refineLemma6(qs.q, region, uRegion,
							qs.vg.Point(u), qs.vg.Point(id))
					}
				}
			}
			if region.Empty() {
				continue
			}
			fn := distFn{CP: qs.vg.Point(id), Base: d}
			cpl = qs.mergeCandidateCPL(cpl, region, fn)
		}
	}
}

// mergeCandidateCPL folds a candidate control point (fn over region) into
// the list: inside the region, each entry either adopts the candidate (∅
// entries, Algorithm 2 lines 11-12) or is split against it (lines 13-14);
// outside, entries are untouched. The result is built in a scratch buffer
// that ping-pongs with the input: it stays valid only until the following
// mergeCandidateCPL call on this query state.
func (qs *queryState) mergeCandidateCPL(cpl CPL, region interval.Set, fn distFn) CPL {
	q := qs.q
	out := qs.cplMergeScratch[:0]
	for _, e := range cpl {
		inter := region.IntersectSpan(e.Span)
		if inter.Empty() {
			out = append(out, e)
			continue
		}
		outside := interval.Set{e.Span}.Subtract(inter)
		for _, sp := range outside {
			out = append(out, CPLEntry{Span: sp, Fn: e.Fn, Valid: e.Valid})
		}
		for _, sp := range inter {
			if !e.Valid {
				out = append(out, CPLEntry{Span: sp, Fn: fn, Valid: true})
				continue
			}
			pieces := appendSplitPieces(qs.pieceScratch[:0], q, sp, e.Fn, fn, qs.eng.Opts.UseBisectionSolver)
			qs.pieceScratch = pieces[:0]
			for _, pc := range pieces {
				if pc.FirstWins {
					out = append(out, CPLEntry{Span: pc.Span, Fn: e.Fn, Valid: true})
				} else {
					out = append(out, CPLEntry{Span: pc.Span, Fn: fn, Valid: true})
				}
			}
		}
	}
	qs.cplMergeScratch = cpl[:0] // the input buffer backs the next merge
	return normalizeCPL(out)
}

// refineLemma6 applies the paper's Lemma 6: for a span r ⊆ VR(v) − VR(u)
// whose both endpoints coincide with boundaries of u's visible region (u
// sees exactly the endpoints of the hole, not its interior), v cannot be
// the control point over r unless v lies inside the triangle formed by u
// and r's endpoints — a path turning at v from u would always be beaten by
// one hugging the obstacle that blocks u from r.
func refineLemma6(q geom.Segment, region, uRegion interval.Set, u, v geom.Point) interval.Set {
	if region.Empty() || uRegion.Empty() {
		return region
	}
	kept := region[:0:0]
	for _, r := range region {
		// The span is a "hole" of VR(u) iff both endpoints touch uRegion
		// boundaries; interior holes sit strictly between two u-spans.
		loTouches := uRegion.Contains(r.Lo)
		hiTouches := uRegion.Contains(r.Hi)
		if loTouches && hiTouches && !uRegion.Contains(r.Mid()) {
			a, b := q.At(r.Lo), q.At(r.Hi)
			if !pointInTriangle(v, u, a, b) {
				continue // Lemma 6: v cannot control r
			}
		}
		kept = append(kept, r)
	}
	return kept
}

// pointInTriangle reports whether p lies in the closed triangle (a, b, c).
func pointInTriangle(p, a, b, c geom.Point) bool {
	d1 := geom.Orientation(a, b, p)
	d2 := geom.Orientation(b, c, p)
	d3 := geom.Orientation(c, a, p)
	hasNeg := d1 < 0 || d2 < 0 || d3 < 0
	hasPos := d1 > 0 || d2 > 0 || d3 > 0
	return !(hasNeg && hasPos)
}

// normalizeCPL sorts entries and merges adjacent entries with identical
// owners (footnote 6's merge rule).
func normalizeCPL(cpl CPL) CPL {
	slices.SortFunc(cpl, func(a, b CPLEntry) int {
		switch {
		case a.Span.Lo < b.Span.Lo:
			return -1
		case a.Span.Lo > b.Span.Lo:
			return 1
		}
		return 0
	})
	out := cpl[:0]
	for _, e := range cpl {
		if e.Span.Empty() {
			continue
		}
		if n := len(out); n > 0 && sameCPLOwner(out[n-1], e) && e.Span.Lo-out[n-1].Span.Hi <= interval.Eps {
			out[n-1].Span.Hi = e.Span.Hi
		} else {
			out = append(out, e)
		}
	}
	return out
}

func sameCPLOwner(a, b CPLEntry) bool {
	if a.Valid != b.Valid {
		return false
	}
	if !a.Valid {
		return true
	}
	return a.Fn.CP.Eq(b.Fn.CP) && math.Abs(a.Fn.Base-b.Fn.Base) <= geom.Eps
}

// cplMax is Lemma 7's pruning bound CPLMAX: the maximum, over current
// entries, of the obstructed distance from p to the entry's span endpoints
// via its control point. It is +Inf while any span still has the ∅ owner.
func cplMax(q geom.Segment, cpl CPL) float64 {
	m := 0.0
	for _, e := range cpl {
		if !e.Valid {
			return math.Inf(1)
		}
		m = math.Max(m, math.Max(e.Fn.eval(q, e.Span.Lo), e.Fn.eval(q, e.Span.Hi)))
	}
	return m
}

// cplDistAt evaluates the obstructed distance from the CPL's data point to
// q(t) (+Inf on ∅ spans). Used by tests and the COkNN envelope machinery.
func cplDistAt(q geom.Segment, cpl CPL, t float64) float64 {
	for _, e := range cpl {
		if e.Span.Contains(t) {
			if !e.Valid {
				return math.Inf(1)
			}
			return e.Fn.eval(q, t)
		}
	}
	return math.Inf(1)
}
