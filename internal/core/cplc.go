package core

import (
	"math"
	"sort"

	"connquery/internal/geom"
	"connquery/internal/interval"
	"connquery/internal/visgraph"
)

// computeCPL is Algorithm 2 (Control Point List Computation). It traverses
// the local visibility graph from the transient node pNode in ascending
// obstructed distance (a full Dijkstra, then ordered scan), and for each
// node v considers it as a candidate control point over the part of q it can
// serve: its visible region minus its Dijkstra predecessor's visible region
// (Lemma 5). Candidates are folded into the control point list with the
// quadratic Split function; Lemma 7's CPLMAX bound terminates the scan.
//
// IOR must have run for pNode first so that every obstacle in SR(p, q) is in
// the graph; Theorem 2 then guarantees the true shortest path to any point
// of q only turns at loaded vertices, so the produced CPL is exact.
func (qs *queryState) computeCPL(pNode visgraph.NodeID) CPL {
	dist, prev := qs.vg.ShortestPaths(pNode)

	type cand struct {
		id visgraph.NodeID
		d  float64
	}
	order := make([]cand, 0, len(dist))
	for i, d := range dist {
		if !math.IsInf(d, 1) && qs.vg.Kind(visgraph.NodeID(i)) != visgraph.KindAnchor {
			order = append(order, cand{visgraph.NodeID(i), d})
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].d != order[j].d {
			return order[i].d < order[j].d
		}
		return order[i].id < order[j].id
	})

	cpl := CPL{{Span: geom.Span{Lo: 0, Hi: 1}}}
	for _, c := range order {
		if !qs.eng.Opts.DisableLemma7 && c.d >= cplMax(qs.q, cpl) {
			break // Lemma 7: no farther node can enter the CPL
		}
		var region interval.Set
		if c.id == pNode {
			region = qs.visibleRegion(c.id)
		} else {
			region = qs.visibleRegion(c.id)
			if u := prev[c.id]; u != visgraph.Invalid {
				// Lemma 5: v cannot control any interval its predecessor
				// also sees.
				uRegion := qs.visibleRegion(u)
				region = region.Subtract(uRegion)
				if !qs.eng.Opts.DisableLemma6 {
					region = refineLemma6(qs.q, region, uRegion,
						qs.vg.Point(u), qs.vg.Point(c.id))
				}
			}
		}
		if region.Empty() {
			continue
		}
		fn := distFn{CP: qs.vg.Point(c.id), Base: c.d}
		cpl = mergeCandidateCPL(qs.q, cpl, region, fn, qs.eng.Opts.UseBisectionSolver)
	}
	return cpl
}

// mergeCandidateCPL folds a candidate control point (fn over region) into
// the list: inside the region, each entry either adopts the candidate (∅
// entries, Algorithm 2 lines 11-12) or is split against it (lines 13-14);
// outside, entries are untouched.
func mergeCandidateCPL(q geom.Segment, cpl CPL, region interval.Set, fn distFn, bisect bool) CPL {
	out := make(CPL, 0, len(cpl)+2)
	for _, e := range cpl {
		inter := region.IntersectSpan(e.Span)
		if inter.Empty() {
			out = append(out, e)
			continue
		}
		outside := interval.Set{e.Span}.Subtract(inter)
		for _, sp := range outside {
			out = append(out, CPLEntry{Span: sp, Fn: e.Fn, Valid: e.Valid})
		}
		for _, sp := range inter {
			if !e.Valid {
				out = append(out, CPLEntry{Span: sp, Fn: fn, Valid: true})
				continue
			}
			for _, pc := range splitPieces(q, sp, e.Fn, fn, bisect) {
				if pc.FirstWins {
					out = append(out, CPLEntry{Span: pc.Span, Fn: e.Fn, Valid: true})
				} else {
					out = append(out, CPLEntry{Span: pc.Span, Fn: fn, Valid: true})
				}
			}
		}
	}
	return normalizeCPL(out)
}

// refineLemma6 applies the paper's Lemma 6: for a span r ⊆ VR(v) − VR(u)
// whose both endpoints coincide with boundaries of u's visible region (u
// sees exactly the endpoints of the hole, not its interior), v cannot be
// the control point over r unless v lies inside the triangle formed by u
// and r's endpoints — a path turning at v from u would always be beaten by
// one hugging the obstacle that blocks u from r.
func refineLemma6(q geom.Segment, region, uRegion interval.Set, u, v geom.Point) interval.Set {
	if region.Empty() || uRegion.Empty() {
		return region
	}
	kept := region[:0:0]
	for _, r := range region {
		// The span is a "hole" of VR(u) iff both endpoints touch uRegion
		// boundaries; interior holes sit strictly between two u-spans.
		loTouches := uRegion.Contains(r.Lo)
		hiTouches := uRegion.Contains(r.Hi)
		if loTouches && hiTouches && !uRegion.Contains(r.Mid()) {
			a, b := q.At(r.Lo), q.At(r.Hi)
			if !pointInTriangle(v, u, a, b) {
				continue // Lemma 6: v cannot control r
			}
		}
		kept = append(kept, r)
	}
	return kept
}

// pointInTriangle reports whether p lies in the closed triangle (a, b, c).
func pointInTriangle(p, a, b, c geom.Point) bool {
	d1 := geom.Orientation(a, b, p)
	d2 := geom.Orientation(b, c, p)
	d3 := geom.Orientation(c, a, p)
	hasNeg := d1 < 0 || d2 < 0 || d3 < 0
	hasPos := d1 > 0 || d2 > 0 || d3 > 0
	return !(hasNeg && hasPos)
}

// normalizeCPL sorts entries and merges adjacent entries with identical
// owners (footnote 6's merge rule).
func normalizeCPL(cpl CPL) CPL {
	sort.Slice(cpl, func(i, j int) bool { return cpl[i].Span.Lo < cpl[j].Span.Lo })
	out := cpl[:0]
	for _, e := range cpl {
		if e.Span.Empty() {
			continue
		}
		if n := len(out); n > 0 && sameCPLOwner(out[n-1], e) && e.Span.Lo-out[n-1].Span.Hi <= interval.Eps {
			out[n-1].Span.Hi = e.Span.Hi
		} else {
			out = append(out, e)
		}
	}
	return out
}

func sameCPLOwner(a, b CPLEntry) bool {
	if a.Valid != b.Valid {
		return false
	}
	if !a.Valid {
		return true
	}
	return a.Fn.CP.Eq(b.Fn.CP) && math.Abs(a.Fn.Base-b.Fn.Base) <= geom.Eps
}

// cplMax is Lemma 7's pruning bound CPLMAX: the maximum, over current
// entries, of the obstructed distance from p to the entry's span endpoints
// via its control point. It is +Inf while any span still has the ∅ owner.
func cplMax(q geom.Segment, cpl CPL) float64 {
	m := 0.0
	for _, e := range cpl {
		if !e.Valid {
			return math.Inf(1)
		}
		m = math.Max(m, math.Max(e.Fn.eval(q, e.Span.Lo), e.Fn.eval(q, e.Span.Hi)))
	}
	return m
}

// cplDistAt evaluates the obstructed distance from the CPL's data point to
// q(t) (+Inf on ∅ spans). Used by tests and the COkNN envelope machinery.
func cplDistAt(q geom.Segment, cpl CPL, t float64) float64 {
	for _, e := range cpl {
		if e.Span.Contains(t) {
			if !e.Valid {
				return math.Inf(1)
			}
			return e.Fn.eval(q, t)
		}
	}
	return math.Inf(1)
}
