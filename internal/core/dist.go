package core

import (
	"connquery/internal/geom"
	"connquery/internal/visgraph"
)

// ObstructedDistance computes the exact obstructed distance ||a, b|| using
// the incremental obstacle retrieval machinery: the local visibility graph
// grows only until the shortest path from a to b stabilizes (Lemma 3), so
// obstacles far from the pair are never touched. The second return value is
// the retrieval reach (see stats.QueryMetrics.Reach): the radius around the
// segment a-b actually consulted, +Inf when the pair is mutually unreachable
// (the retrieval then drained the whole obstacle stream).
func (e *Engine) ObstructedDistance(a, b geom.Point) (float64, float64) {
	if geom.Dist2(a, b) <= geom.Eps*geom.Eps {
		return 0, 0
	}
	qs := e.newQueryState(geom.Seg(a, b))
	defer e.release(qs)
	pNode := qs.vg.AddPoint(a, visgraph.KindTransient)
	_, dE := qs.ior(pNode)
	return dE, qs.reachValue()
}
