package core

import (
	"math/rand"
	"reflect"
	"testing"

	"connquery/internal/flatgeom"
)

// kernelEngine is the scene's two-tree engine with the flat-geometry kernel
// attached, the configuration the public DB always runs.
func kernelEngine(sc scene, opts Options) *Engine {
	e := sc.engine(opts, false)
	e.Kernel = flatgeom.NewKernel(sc.obstacles)
	return e
}

// The intra-query parallel path (Options.Workers > 1) must be bit-identical
// to the sequential path: same payload (DeepEqual over the float spans and
// distances is exact equality) and same NPE/NOE/|SVG| metrics. Scenes are
// drawn across both kernel regimes — small sets served by the corner-pair
// table (which skips the parallel corner link) and large sets where the
// parallel link and the occlusion index run.
func TestParallelCONNBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(601))
	for trial := 0; trial < 25; trial++ {
		nObs := 5 + r.Intn(40)
		if trial%3 == 0 {
			nObs = 155 + r.Intn(60) // past the corner-table gate
		}
		sc := randScene(r, 3+r.Intn(6), nObs, 100)
		seqRes, seqM := kernelEngine(sc, Options{}).CONN(sc.q)
		parRes, parM := kernelEngine(sc, Options{Workers: 4}).CONN(sc.q)
		if !reflect.DeepEqual(seqRes, parRes) {
			t.Fatalf("trial %d (%d obstacles): parallel result diverged\nseq: %+v\npar: %+v",
				trial, nObs, seqRes, parRes)
		}
		if seqM.NPE != parM.NPE || seqM.NOE != parM.NOE || seqM.SVG != parM.SVG {
			t.Fatalf("trial %d: metrics diverged: seq NPE=%d NOE=%d SVG=%d, par NPE=%d NOE=%d SVG=%d",
				trial, seqM.NPE, seqM.NOE, seqM.SVG, parM.NPE, parM.NOE, parM.SVG)
		}
	}
}

// Same contract for COkNN, whose CPLC consumes multi-owner candidate sets.
func TestParallelCOkNNBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(607))
	for trial := 0; trial < 15; trial++ {
		nObs := 5 + r.Intn(40)
		if trial%3 == 0 {
			nObs = 155 + r.Intn(40)
		}
		sc := randScene(r, 4+r.Intn(8), nObs, 100)
		k := 1 + r.Intn(3)
		seqRes, seqM := kernelEngine(sc, Options{}).COkNN(sc.q, k)
		parRes, parM := kernelEngine(sc, Options{Workers: 3}).COkNN(sc.q, k)
		if !reflect.DeepEqual(seqRes, parRes) {
			t.Fatalf("trial %d (k=%d, %d obstacles): parallel result diverged", trial, k, nObs)
		}
		if seqM.NPE != parM.NPE || seqM.NOE != parM.NOE || seqM.SVG != parM.SVG {
			t.Fatalf("trial %d: metrics diverged", trial)
		}
	}
}

// The parallel path must honor the ablation switches too (they change which
// candidates CPLC consumes, stressing the lookahead's live-bound re-check).
func TestParallelAblationsBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(613))
	for _, opts := range []Options{
		{DisableLemma6: true},
		{DisableLemma7: true},
		{DisableVGReuse: true},
	} {
		sc := randScene(r, 5, 25, 100)
		par := opts
		par.Workers = 4
		seqRes, _ := kernelEngine(sc, opts).CONN(sc.q)
		parRes, _ := kernelEngine(sc, par).CONN(sc.q)
		if !reflect.DeepEqual(seqRes, parRes) {
			t.Fatalf("opts %+v: parallel result diverged", opts)
		}
	}
}
