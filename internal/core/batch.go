package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"connquery/internal/geom"
	"connquery/internal/stats"
)

// cloneView returns an engine over the same immutable indexes with fresh
// page-fault counters and a fresh (private) query-state pool, so one batch
// worker can query independently of its siblings. R-tree nodes, obstacle
// storage, options and the snapshot epoch are shared; per-query mutable
// state is not.
func (e *Engine) cloneView() *Engine {
	cp := &Engine{Obstacles: e.Obstacles, Kernel: e.Kernel, Opts: e.Opts, Epoch: e.Epoch}
	// Batch workers parallelize across queries; nesting an intra-query pool
	// inside each would oversubscribe the machine for no gain.
	cp.Opts.Workers = 0
	if e.OneTree() {
		c := &stats.PageCounter{}
		cp.Unified = e.Unified.View(c)
		cp.DataCounter = c
		return cp
	}
	dc, oc := &stats.PageCounter{}, &stats.PageCounter{}
	cp.Data = e.Data.View(dc)
	cp.Obst = e.Obst.View(oc)
	cp.DataCounter, cp.ObstCounter = dc, oc
	return cp
}

// CONNBatch answers a slice of CONN queries on a bounded worker pool and
// returns the per-query results and metrics in input order. Each worker owns
// an engine view (shared indexes, private counters) and a private query
// state, which it reuses across every query it processes — the same warm
// visibility-graph and Dijkstra buffers a sequential loop would enjoy.
// workers <= 0 selects GOMAXPROCS. Page faults are counted per worker
// without an LRU buffer; callers that model buffered I/O should use the
// public DB.CONNBatch, whose workers carry per-clone buffers.
func (e *Engine) CONNBatch(queries []geom.Segment, workers int) ([]*Result, []stats.QueryMetrics) {
	return RunCONNBatch(e.cloneView, queries, workers)
}

// RunCONNBatch is the worker pool shared by Engine.CONNBatch and the public
// DB.CONNBatch: newWorker builds one independent engine per worker (shared
// immutable indexes, private mutable state), and queries are handed out by
// an atomic cursor so workers stay busy regardless of per-query cost skew.
func RunCONNBatch(newWorker func() *Engine, queries []geom.Segment, workers int) ([]*Result, []stats.QueryMetrics) {
	n := len(queries)
	results := make([]*Result, n)
	metrics := make([]stats.QueryMetrics, n)
	if n == 0 {
		return results, metrics
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			we := newWorker()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i], metrics[i] = we.CONN(queries[i])
			}
		}()
	}
	wg.Wait()
	return results, metrics
}
