package core

import (
	"math"
	"math/rand"
	"testing"

	"connquery/internal/geom"
	"connquery/internal/visgraph"
)

func randQueryPoints(r *rand.Rand, sc scene, n int) []geom.Point {
	var out []geom.Point
	for len(out) < n {
		p := geom.Pt(r.Float64()*100, r.Float64()*100)
		free := true
		for _, o := range sc.obstacles {
			if o.ContainsOpen(p) {
				free = false
				break
			}
		}
		if free {
			out = append(out, p)
		}
	}
	return out
}

func TestEDistanceJoinMatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(701))
	for trial := 0; trial < 12; trial++ {
		sc := randScene(r, 5+r.Intn(12), 1+r.Intn(5), 100)
		e := sc.engine(Options{}, false)
		queries := randQueryPoints(r, sc, 4)
		radius := 15 + r.Float64()*25

		pairs, _ := e.EDistanceJoin(queries, radius)
		got := map[[2]int32]float64{}
		for _, pr := range pairs {
			got[[2]int32{int32(pr.QIdx), pr.PID}] = pr.Dist
		}
		for qi, qp := range queries {
			for pid, p := range sc.points {
				want := visgraph.BruteObstructedDist(p, qp, sc.obstacles)
				if math.Abs(want-radius) < 1e-6*(1+radius) {
					continue // borderline
				}
				_, in := got[[2]int32{int32(qi), int32(pid)}]
				if (want <= radius) != in {
					t.Fatalf("trial %d (q%d, p%d): dist=%v radius=%v in=%v", trial, qi, pid, want, radius, in)
				}
			}
		}
	}
}

func TestClosestPairMatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(703))
	for trial := 0; trial < 15; trial++ {
		sc := randScene(r, 5+r.Intn(12), 1+r.Intn(5), 100)
		e := sc.engine(Options{}, false)
		queries := randQueryPoints(r, sc, 5)

		best, _ := e.ClosestPair(queries)
		want := math.Inf(1)
		for _, qp := range queries {
			for _, p := range sc.points {
				if d := visgraph.BruteObstructedDist(p, qp, sc.obstacles); d < want {
					want = d
				}
			}
		}
		if math.Abs(best.Dist-want) > 1e-6*(1+want) {
			t.Fatalf("trial %d: closest pair dist %v, oracle %v", trial, best.Dist, want)
		}
		// The reported pair's own distance must match its claim.
		direct := visgraph.BruteObstructedDist(best.P, queries[best.QIdx], sc.obstacles)
		if math.Abs(direct-best.Dist) > 1e-6*(1+direct) {
			t.Fatalf("trial %d: reported pair distance %v, recomputed %v", trial, best.Dist, direct)
		}
	}
}

func TestDistanceSemiJoinMatchesONN(t *testing.T) {
	r := rand.New(rand.NewSource(707))
	sc := randScene(r, 15, 5, 100)
	e := sc.engine(Options{}, false)
	queries := randQueryPoints(r, sc, 6)

	pairs, _ := e.DistanceSemiJoin(queries)
	if len(pairs) != len(queries) {
		t.Fatalf("pairs = %d, want %d", len(pairs), len(queries))
	}
	seen := map[int]bool{}
	for i, pr := range pairs {
		if i > 0 && pr.Dist < pairs[i-1].Dist-1e-12 {
			t.Fatalf("not sorted: %+v", pairs)
		}
		if seen[pr.QIdx] {
			t.Fatalf("duplicate query index %d", pr.QIdx)
		}
		seen[pr.QIdx] = true
		nbrs, _ := e.ONN(queries[pr.QIdx], 1)
		if len(nbrs) == 0 || math.Abs(nbrs[0].Dist-pr.Dist) > 1e-9 {
			t.Fatalf("semi-join pair %d disagrees with ONN: %v vs %v", pr.QIdx, pr.Dist, nbrs)
		}
	}
}

func TestVisibleKNNMatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(709))
	for trial := 0; trial < 20; trial++ {
		sc := randScene(r, 5+r.Intn(15), 1+r.Intn(6), 100)
		e := sc.engine(Options{}, false)
		qp := randQueryPoints(r, sc, 1)[0]
		k := 1 + r.Intn(3)

		got, _ := e.VisibleKNN(qp, k)
		// Oracle: Euclidean distances of visible points, sorted.
		type pd struct {
			pid int
			d   float64
		}
		var vis []pd
		for pid, p := range sc.points {
			if geom.Visible(qp, p, sc.obstacles) {
				vis = append(vis, pd{pid, geom.Dist(qp, p)})
			}
		}
		wantN := k
		if len(vis) < k {
			wantN = len(vis)
		}
		if len(got) != wantN {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), wantN)
		}
		for i := 1; i < len(got); i++ {
			if got[i].Dist < got[i-1].Dist {
				t.Fatalf("trial %d: unsorted results", trial)
			}
		}
		for _, n := range got {
			if !geom.Visible(qp, n.P, sc.obstacles) {
				t.Fatalf("trial %d: invisible point %d in VkNN answer", trial, n.PID)
			}
		}
		// Distance of the k-th result matches the oracle's k-th visible.
		if len(got) > 0 {
			ds := make([]float64, len(vis))
			for i, v := range vis {
				ds[i] = v.d
			}
			sortFloats(ds)
			for i := range got {
				if math.Abs(got[i].Dist-ds[i]) > 1e-9 {
					t.Fatalf("trial %d rank %d: %v vs oracle %v", trial, i, got[i].Dist, ds[i])
				}
			}
		}
	}
}

func sortFloats(x []float64) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}

func TestClosestPairNoQueries(t *testing.T) {
	sc := scene{points: []geom.Point{geom.Pt(1, 1)}, q: geom.Seg(geom.Pt(0, 0), geom.Pt(1, 0))}
	e := sc.engine(Options{}, false)
	best, _ := e.ClosestPair(nil)
	if best.QIdx != -1 || !math.IsInf(best.Dist, 1) {
		t.Fatalf("empty query set: %+v", best)
	}
}
