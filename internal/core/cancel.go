package core

import "connquery/internal/visgraph"

// Aborted is the panic payload that carries a cancelled query's error out of
// the engine. It is raised only when Engine.Cancel is installed, so direct
// engine users (the bench harness, tests) never see it; the public Exec path
// recovers it and returns the carried error (typically ctx.Err()).
type Aborted = visgraph.Aborted

// poll is the core-side cancellation checkpoint, called from the IOR growth
// loop, the CPLC candidate-batch loop and every best-first point scan. It
// delegates to the visibility graph's installed check (a single nil
// comparison when no cancellation is configured) and panics with Aborted
// when the check reports an error. The Dijkstra settle loop polls the same
// check internally, so deep searches abort without reaching these
// checkpoints.
func (qs *queryState) poll() { qs.vg.Poll() }
