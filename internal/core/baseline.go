package core

import (
	"math"
	"sort"
	"time"

	"connquery/internal/geom"
	"connquery/internal/rtree"
	"connquery/internal/stats"
	"connquery/internal/visgraph"
)

func rtreeSegTarget(q geom.Segment) rtree.SegmentTarget { return rtree.SegmentTarget{Seg: q} }

// Neighbor is one answer of a point ONN query.
type Neighbor struct {
	PID  int32
	P    geom.Point
	Dist float64 // obstructed distance
}

// ONN answers a snapshot obstructed k-nearest-neighbor query at a single
// point (Zhang et al., EDBT 2004 / Xia et al., BNCOD 2004 — the building
// block the naive CONN baseline issues at every sample position). It reuses
// the incremental machinery with a degenerate query segment: the best-first
// scan is ordered by Euclidean mindist (a lower bound of the obstructed
// distance) and terminates once the bound exceeds the k-th best obstructed
// distance found.
func (e *Engine) ONN(pt geom.Point, k int) ([]Neighbor, stats.QueryMetrics) {
	if k < 1 {
		k = 1
	}
	start := time.Now()
	qs := e.newQueryState(geom.Seg(pt, pt))
	defer e.release(qs)

	var best []Neighbor // sorted ascending by Dist, length <= k
	kth := func() float64 {
		if len(best) < k {
			return math.Inf(1)
		}
		return best[len(best)-1].Dist
	}
	for {
		qs.poll()
		bound, ok := qs.peekPointBound()
		if thresh := kth(); !ok || bound >= thresh {
			qs.noteStop(thresh, ok)
			break
		}
		item, _, _ := qs.nextPoint()
		p := item.Point()
		qs.npe++

		pNode := qs.vg.AddPoint(p, visgraph.KindTransient)
		dS, _ := qs.ior(pNode)
		qs.vg.RemovePoint(pNode)
		if math.IsInf(dS, 1) {
			continue
		}
		best = append(best, Neighbor{PID: item.ID, P: p, Dist: dS})
		sort.SliceStable(best, func(i, j int) bool { return best[i].Dist < best[j].Dist })
		if len(best) > k {
			best = best[:k]
		}
	}
	m := stats.QueryMetrics{NPE: qs.npe, NOE: qs.noe, SVG: qs.svgSize(), CPU: time.Since(start), Reach: qs.reachValue()}
	return best, m
}

// CNN answers the classical Euclidean continuous nearest neighbor query
// (Tao, Papadias & Shen, VLDB 2002) — the obstacle-free special case the
// paper contrasts in Figure 1. It runs the same best-first scan and
// result-list update with every point acting as its own control point at
// base distance zero; with no obstacles the obstructed distance reduces to
// the Euclidean distance and the split points are the classical bisector
// crossings.
func (e *Engine) CNN(q geom.Segment) (*Result, stats.QueryMetrics) {
	start := time.Now()
	qs := e.newQueryState(q)
	defer e.release(qs)
	rl := []ResultEntry{{PID: NoOwner, Span: geom.Span{Lo: 0, Hi: 1}}}
	for {
		qs.poll()
		bound, ok := qs.peekPointBound()
		if thresh := rlMax(q, rl); !ok || bound >= thresh {
			qs.noteStop(thresh, ok)
			break
		}
		item, _, _ := qs.nextPoint()
		p := item.Point()
		qs.npe++
		cpl := CPL{{Span: geom.Span{Lo: 0, Hi: 1}, Fn: distFn{CP: p, Base: 0}, Valid: true}}
		rl = qs.rlu(rl, item.ID, p, cpl)
	}
	m := stats.QueryMetrics{NPE: qs.npe, CPU: time.Since(start), Reach: qs.reachValue()}
	return &Result{Q: q, Tuples: finalizeRL(rl), MaxDist: rlMax(q, rl)}, m
}

// NaiveCONN is the baseline the paper dismisses in §1: issue an ONN query at
// (a sampling of) every point along q and stitch equal consecutive answers.
// Its accuracy depends on the sample count and it re-pays the obstacle
// retrieval for every sample, which is exactly the cost profile the CONN
// algorithm is designed to avoid; it exists for benchmarking and as a
// cross-check.
func (e *Engine) NaiveCONN(q geom.Segment, samples int) (*Result, stats.QueryMetrics) {
	if samples < 2 {
		samples = 2
	}
	start := time.Now()
	agg := stats.QueryMetrics{}
	var tuples []Tuple
	maxDist := 0.0
	for i := 0; i <= samples; i++ {
		t := float64(i) / float64(samples)
		nbrs, m := e.ONN(q.At(t), 1)
		agg.NPE += m.NPE
		agg.NOE += m.NOE
		if m.SVG > agg.SVG {
			agg.SVG = m.SVG
		}
		if m.Reach > agg.Reach {
			agg.Reach = m.Reach
		}
		pid, p := NoOwner, geom.Point{}
		if len(nbrs) > 0 {
			pid, p = nbrs[0].PID, nbrs[0].P
			maxDist = math.Max(maxDist, nbrs[0].Dist)
		} else {
			maxDist = math.Inf(1)
		}
		if n := len(tuples); n > 0 && tuples[n-1].PID == pid {
			tuples[n-1].Span.Hi = t
			continue
		}
		lo := 0.0
		if n := len(tuples); n > 0 {
			lo = tuples[n-1].Span.Hi
		}
		tuples = append(tuples, Tuple{PID: pid, P: p, Span: geom.Span{Lo: lo, Hi: t}})
	}
	if n := len(tuples); n > 0 {
		tuples[n-1].Span.Hi = 1
	}
	agg.CPU = time.Since(start)
	return &Result{Q: q, Tuples: tuples, MaxDist: maxDist}, agg
}

// BruteCONNDistanceAt is the test oracle: the exact obstructed distance from
// the closest data point to q(t), computed with the full visibility graph
// over the complete obstacle set. O(|P| * |O|^2 log) per call — tests only.
func BruteCONNDistanceAt(points []geom.Point, obstacles []geom.Rect, q geom.Segment, t float64) float64 {
	s := q.At(t)
	best := math.Inf(1)
	for _, p := range points {
		if d := visgraph.BruteObstructedDist(p, s, obstacles); d < best {
			best = d
		}
	}
	return best
}

// BruteKDistancesAt returns the k smallest exact obstructed distances from
// the data points to q(t) (test oracle for COkNN).
func BruteKDistancesAt(points []geom.Point, obstacles []geom.Rect, q geom.Segment, t float64, k int) []float64 {
	s := q.At(t)
	ds := make([]float64, 0, len(points))
	for _, p := range points {
		ds = append(ds, visgraph.BruteObstructedDist(p, s, obstacles))
	}
	sort.Float64s(ds)
	if len(ds) > k {
		ds = ds[:k]
	}
	return ds
}
