package core

import (
	"math"
	"math/rand"
	"testing"

	"connquery/internal/geom"
	"connquery/internal/rtree"
)

// The CONN answer must be independent of point insertion order: shuffling
// the data set (hence the R-tree layout and the best-first tie-breaking)
// may permute PIDs but not the answer's geometry.
func TestCONNInsertionOrderInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(821))
	for trial := 0; trial < 15; trial++ {
		sc := randScene(r, 5+r.Intn(20), 1+r.Intn(6), 100)
		base := sc.engine(Options{}, false)
		want, _ := base.CONN(sc.q)

		// Shuffled copy: same points, different IDs and tree shape.
		perm := r.Perm(len(sc.points))
		data := rtree.New(rtree.Options{PageSize: 256})
		shuffled := make([]geom.Point, len(sc.points))
		for newID, oldID := range perm {
			shuffled[newID] = sc.points[oldID]
			data.Insert(rtree.PointItem(int32(newID), sc.points[oldID]))
		}
		obst := rtree.New(rtree.Options{PageSize: 256})
		for i, o := range sc.obstacles {
			obst.Insert(rtree.ObstacleItem(int32(i), o))
		}
		eng := &Engine{Data: data, Obst: obst, Obstacles: sc.obstacles}
		got, _ := eng.CONN(sc.q)

		// Compare by owner location at samples (PIDs are permuted).
		for s := 0; s <= 60; s++ {
			tt := float64(s) / 60
			a, _ := want.OwnerAt(tt)
			b, _ := got.OwnerAt(tt)
			if (a.PID == NoOwner) != (b.PID == NoOwner) {
				t.Fatalf("trial %d t=%v: reachability differs", trial, tt)
			}
			if a.PID == NoOwner {
				continue
			}
			if a.P.Eq(b.P) {
				continue
			}
			// Different owner points are fine only at ties / split points.
			nearSplit := false
			for _, res := range []*Result{want, got} {
				for _, sp := range res.SplitPoints() {
					if math.Abs(tt-sp) < 1e-4 {
						nearSplit = true
					}
				}
			}
			if nearSplit {
				continue
			}
			da := geomBrute(a.P, sc, tt)
			db := geomBrute(b.P, sc, tt)
			if math.Abs(da-db) > 1e-6*(1+da) {
				t.Fatalf("trial %d t=%v: owners %v vs %v with dists %v vs %v",
					trial, tt, a.P, b.P, da, db)
			}
		}
	}
}

func geomBrute(p geom.Point, sc scene, tt float64) float64 {
	return BruteCONNDistanceAt([]geom.Point{p}, sc.obstacles, sc.q, tt)
}
