package core

import (
	"math"
	"sort"
	"time"

	"connquery/internal/geom"
	"connquery/internal/stats"
	"connquery/internal/visgraph"
)

// TrajectoryResult is the answer of a trajectory CONN query: one CONN
// result per polyline leg, in order.
type TrajectoryResult struct {
	Waypoints []geom.Point
	Legs      []*Result
}

// TrajectoryCONN answers the paper's first future-work extension (§6):
// retrieve the obstructed NN of every point on a moving trajectory
// consisting of several consecutive line segments. Each leg runs the
// single-segment CONN algorithm; metrics are accumulated across legs.
//
// Degenerate legs (repeated waypoints) are skipped.
func (e *Engine) TrajectoryCONN(waypoints []geom.Point) (*TrajectoryResult, stats.QueryMetrics) {
	res := &TrajectoryResult{Waypoints: append([]geom.Point(nil), waypoints...)}
	var agg stats.QueryMetrics
	start := time.Now()
	for i := 1; i < len(waypoints); i++ {
		leg := geom.Seg(waypoints[i-1], waypoints[i])
		if leg.Degenerate() {
			continue
		}
		r, m := e.CONN(leg)
		res.Legs = append(res.Legs, r)
		agg.FaultsData += m.FaultsData
		agg.FaultsObst += m.FaultsObst
		agg.NPE += m.NPE
		agg.NOE += m.NOE
		if m.SVG > agg.SVG {
			agg.SVG = m.SVG
		}
		if m.Reach > agg.Reach {
			agg.Reach = m.Reach
		}
	}
	agg.CPU = time.Since(start)
	return res, agg
}

// OwnerAt returns the tuple covering fractional position t of the whole
// trajectory (t in [0,1] is arc-length parameterized across legs).
func (tr *TrajectoryResult) OwnerAt(t float64) (Tuple, bool) {
	if len(tr.Legs) == 0 {
		return Tuple{}, false
	}
	total := 0.0
	lens := make([]float64, len(tr.Legs))
	for i, leg := range tr.Legs {
		lens[i] = leg.Q.Length()
		total += lens[i]
	}
	if total == 0 {
		return Tuple{}, false
	}
	target := t * total
	for i, leg := range tr.Legs {
		if target <= lens[i] || i == len(tr.Legs)-1 {
			lt := target / lens[i]
			if lt > 1 {
				lt = 1
			}
			return leg.OwnerAt(lt)
		}
		target -= lens[i]
	}
	return Tuple{}, false
}

// ObstructedRange answers an obstructed range query (Zhang et al., EDBT
// 2004, one of the §2.3 query family): all data points whose obstructed
// distance to center is at most radius, sorted ascending. The best-first
// scan over Euclidean mindist (a lower bound of the obstructed distance)
// terminates as soon as the bound exceeds the radius.
func (e *Engine) ObstructedRange(center geom.Point, radius float64) ([]Neighbor, stats.QueryMetrics) {
	start := time.Now()
	qs := e.newQueryState(geom.Seg(center, center))
	defer e.release(qs)
	var out []Neighbor
	for {
		qs.poll()
		bound, ok := qs.peekPointBound()
		if !ok || bound > radius {
			qs.noteStop(radius, ok)
			break
		}
		item, _, _ := qs.nextPoint()
		p := item.Point()
		qs.npe++
		pNode := qs.vg.AddPoint(p, visgraph.KindTransient)
		dS, _ := qs.ior(pNode)
		qs.vg.RemovePoint(pNode)
		if !math.IsInf(dS, 1) && dS <= radius {
			out = append(out, Neighbor{PID: item.ID, P: p, Dist: dS})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Dist < out[j].Dist })
	m := stats.QueryMetrics{NPE: qs.npe, NOE: qs.noe, SVG: qs.svgSize(), CPU: time.Since(start), Reach: qs.reachValue()}
	return out, m
}
