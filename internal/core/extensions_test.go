package core

import (
	"math"
	"math/rand"
	"testing"

	"connquery/internal/geom"
	"connquery/internal/visgraph"
)

func TestTrajectoryCONNMatchesPerLegCONN(t *testing.T) {
	r := rand.New(rand.NewSource(601))
	sc := randScene(r, 15, 5, 100)
	e := sc.engine(Options{}, false)

	// A three-leg trajectory built from clear segments.
	w1 := sc.q.A
	w2 := sc.q.B
	w3 := geom.Pt(w2.X, w2.Y+0.01) // tiny second leg; third leg back towards w1
	waypoints := []geom.Point{w1, w2, w3}
	tr, m := e.TrajectoryCONN(waypoints)
	if len(tr.Legs) != 2 {
		t.Fatalf("legs = %d, want 2", len(tr.Legs))
	}
	direct, _ := e.CONN(geom.Seg(w1, w2))
	if len(tr.Legs[0].Tuples) != len(direct.Tuples) {
		t.Fatalf("leg 0 tuples %d vs direct %d", len(tr.Legs[0].Tuples), len(direct.Tuples))
	}
	for i := range direct.Tuples {
		if tr.Legs[0].Tuples[i].PID != direct.Tuples[i].PID {
			t.Fatalf("leg 0 tuple %d owner %d vs %d", i, tr.Legs[0].Tuples[i].PID, direct.Tuples[i].PID)
		}
	}
	if m.NPE == 0 {
		t.Fatal("metrics not accumulated")
	}
}

func TestTrajectoryDegenerateLegsSkipped(t *testing.T) {
	sc := scene{points: []geom.Point{geom.Pt(5, 5)}, q: geom.Seg(geom.Pt(0, 0), geom.Pt(10, 0))}
	e := sc.engine(Options{}, false)
	tr, _ := e.TrajectoryCONN([]geom.Point{
		geom.Pt(0, 0), geom.Pt(0, 0), geom.Pt(10, 0),
	})
	if len(tr.Legs) != 1 {
		t.Fatalf("legs = %d, want 1 (degenerate skipped)", len(tr.Legs))
	}
	if tu, ok := tr.OwnerAt(0.5); !ok || tu.PID != 0 {
		t.Fatalf("OwnerAt(0.5) = %+v %v", tu, ok)
	}
}

func TestTrajectoryOwnerAtSpansLegs(t *testing.T) {
	// Two equal-length legs with different nearest points.
	sc := scene{
		points: []geom.Point{geom.Pt(2, 2), geom.Pt(18, 2)},
		q:      geom.Seg(geom.Pt(0, 0), geom.Pt(10, 0)),
	}
	e := sc.engine(Options{}, false)
	tr, _ := e.TrajectoryCONN([]geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(20, 0)})
	if len(tr.Legs) != 2 {
		t.Fatalf("legs = %d", len(tr.Legs))
	}
	first, _ := tr.OwnerAt(0.1)
	last, _ := tr.OwnerAt(0.9)
	if first.PID != 0 || last.PID != 1 {
		t.Fatalf("owners across legs: %d, %d", first.PID, last.PID)
	}
	if _, ok := (&TrajectoryResult{}).OwnerAt(0.5); ok {
		t.Fatal("empty trajectory produced an owner")
	}
}

func TestObstructedRangeMatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(607))
	for trial := 0; trial < 25; trial++ {
		sc := randScene(r, 5+r.Intn(20), 1+r.Intn(6), 100)
		e := sc.engine(Options{}, false)
		center := sc.q.At(r.Float64())
		radius := 10 + r.Float64()*40

		got, _ := e.ObstructedRange(center, radius)
		gotSet := map[int32]float64{}
		for _, n := range got {
			gotSet[n.PID] = n.Dist
		}
		for pid, p := range sc.points {
			want := visgraph.BruteObstructedDist(p, center, sc.obstacles)
			_, in := gotSet[int32(pid)]
			// Skip borderline distances within tolerance of the radius.
			if math.Abs(want-radius) < 1e-6*(1+radius) {
				continue
			}
			if (want <= radius) != in {
				t.Fatalf("trial %d pid %d: bruteDist=%v radius=%v in=%v", trial, pid, want, radius, in)
			}
			if in && math.Abs(gotSet[int32(pid)]-want) > 1e-6*(1+want) {
				t.Fatalf("trial %d pid %d: dist %v, oracle %v", trial, pid, gotSet[int32(pid)], want)
			}
		}
		// Sorted ascending.
		for i := 1; i < len(got); i++ {
			if got[i].Dist < got[i-1].Dist-1e-12 {
				t.Fatalf("trial %d: results not sorted: %+v", trial, got)
			}
		}
	}
}

func TestObstructedRangeEmpty(t *testing.T) {
	sc := scene{points: []geom.Point{geom.Pt(100, 100)}, q: geom.Seg(geom.Pt(0, 0), geom.Pt(1, 0))}
	e := sc.engine(Options{}, false)
	if got, _ := e.ObstructedRange(geom.Pt(0, 0), 5); len(got) != 0 {
		t.Fatalf("expected no results, got %+v", got)
	}
}
