package core

import (
	"math"
	"sort"
	"time"

	"connquery/internal/geom"
	"connquery/internal/rtree"
	"connquery/internal/stats"
)

// This file implements the remaining members of the obstructed query family
// of Zhang, Papadias, Mouratidis & Zhu (EDBT 2004) — the foundational work
// the paper's §2.3 builds on. They share the incremental machinery: the
// Euclidean distance lower-bounds the obstructed distance, so best-first
// scans over the R-tree prune exactly as in the CONN search.

// JoinPair is one result of an obstructed e-distance join or semi-join:
// data point PID is within Dist (obstructed) of query point QIdx.
type JoinPair struct {
	QIdx int   // index into the query point slice
	PID  int32 // data point ID
	P    geom.Point
	Dist float64 // obstructed distance
}

// EDistanceJoin returns every (query point, data point) pair whose
// obstructed distance is at most e, sorted by (QIdx, Dist). Each query
// point runs an obstructed range query; the local visibility graphs are
// per-query-point (their search ranges rarely overlap enough to share).
func (eng *Engine) EDistanceJoin(queries []geom.Point, e float64) ([]JoinPair, stats.QueryMetrics) {
	start := time.Now()
	var agg stats.QueryMetrics
	var out []JoinPair
	for qi, qp := range queries {
		nbrs, m := eng.ObstructedRange(qp, e)
		agg.NPE += m.NPE
		agg.NOE += m.NOE
		if m.SVG > agg.SVG {
			agg.SVG = m.SVG
		}
		if m.Reach > agg.Reach {
			agg.Reach = m.Reach
		}
		for _, n := range nbrs {
			out = append(out, JoinPair{QIdx: qi, PID: n.PID, P: n.P, Dist: n.Dist})
		}
	}
	agg.CPU = time.Since(start)
	return out, agg
}

// ClosestPair returns the (query point, data point) pair with the smallest
// obstructed distance. Query points are processed in ascending order of
// their Euclidean distance to the nearest data point (a lower bound on
// their best obstructed pair), so once that bound exceeds the best pair
// found the scan stops.
func (eng *Engine) ClosestPair(queries []geom.Point) (JoinPair, stats.QueryMetrics) {
	start := time.Now()
	var agg stats.QueryMetrics

	// Lower bounds: Euclidean NN distance per query point.
	type qb struct {
		qi    int
		bound float64
	}
	bounds := make([]qb, len(queries))
	for qi, qp := range queries {
		d := eng.euclideanNNDist(qp)
		bounds[qi] = qb{qi, d}
		// Every bound is a retrieval event: the scan to the first point is a
		// consultation at distance d (+Inf when no point exists at all).
		if d > agg.Reach {
			agg.Reach = d
		}
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i].bound < bounds[j].bound })

	best := JoinPair{QIdx: -1, PID: NoOwner, Dist: math.Inf(1)}
	for _, b := range bounds {
		if b.bound >= best.Dist {
			break // no remaining query point can beat the best pair
		}
		nbrs, m := eng.ONN(queries[b.qi], 1)
		agg.NPE += m.NPE
		agg.NOE += m.NOE
		if m.SVG > agg.SVG {
			agg.SVG = m.SVG
		}
		if m.Reach > agg.Reach {
			agg.Reach = m.Reach
		}
		if len(nbrs) > 0 && nbrs[0].Dist < best.Dist {
			best = JoinPair{QIdx: b.qi, PID: nbrs[0].PID, P: nbrs[0].P, Dist: nbrs[0].Dist}
		}
	}
	agg.CPU = time.Since(start)
	return best, agg
}

// DistanceSemiJoin returns, for each query point, its obstructed nearest
// data point, sorted ascending by distance (Zhang et al.'s distance
// semi-join with k = 1 per query object).
func (eng *Engine) DistanceSemiJoin(queries []geom.Point) ([]JoinPair, stats.QueryMetrics) {
	start := time.Now()
	var agg stats.QueryMetrics
	out := make([]JoinPair, 0, len(queries))
	for qi, qp := range queries {
		nbrs, m := eng.ONN(qp, 1)
		agg.NPE += m.NPE
		agg.NOE += m.NOE
		if m.SVG > agg.SVG {
			agg.SVG = m.SVG
		}
		if m.Reach > agg.Reach {
			agg.Reach = m.Reach
		}
		if len(nbrs) > 0 {
			out = append(out, JoinPair{QIdx: qi, PID: nbrs[0].PID, P: nbrs[0].P, Dist: nbrs[0].Dist})
		} else {
			out = append(out, JoinPair{QIdx: qi, PID: NoOwner, Dist: math.Inf(1)})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Dist < out[j].Dist })
	agg.CPU = time.Since(start)
	return out, agg
}

// euclideanNNDist returns the Euclidean distance from p to the nearest data
// point (the cheap lower bound used by ClosestPair).
func (eng *Engine) euclideanNNDist(p geom.Point) float64 {
	tree := eng.Data
	if eng.OneTree() {
		tree = eng.Unified
	}
	it := tree.NewNearestIter(rtree.PointTarget{P: p})
	for {
		item, d, ok := it.Next()
		if !ok {
			return math.Inf(1)
		}
		if item.Kind == rtree.KindPoint {
			return d
		}
	}
}

// VisibleKNN returns the k data points nearest to p in Euclidean terms
// among those *visible* from p (Nutanong et al., DASFAA 2007 — the VkNN
// query of §2.3, which uses obstacles for occlusion rather than detours).
func (eng *Engine) VisibleKNN(p geom.Point, k int) ([]Neighbor, stats.QueryMetrics) {
	if k < 1 {
		k = 1
	}
	start := time.Now()
	qs := eng.newQueryState(geom.Seg(p, p))
	defer eng.release(qs)

	var best []Neighbor
	kth := func() float64 {
		if len(best) < k {
			return math.Inf(1)
		}
		return best[len(best)-1].Dist
	}
	for {
		qs.poll()
		bound, ok := qs.peekPointBound()
		if thresh := kth(); !ok || bound >= thresh {
			qs.noteStop(thresh, ok)
			break
		}
		item, d, _ := qs.nextPoint()
		cand := item.Point()
		qs.npe++
		// Load every obstacle that could occlude the sight line p-cand:
		// any blocker intersects the segment, hence has mindist(o, p) <= d.
		qs.loadObstaclesUpTo(d)
		qs.loadedUpTo = math.Max(qs.loadedUpTo, d)
		if !qs.vg.Visible(p, cand) {
			continue
		}
		best = append(best, Neighbor{PID: item.ID, P: cand, Dist: d})
		sort.SliceStable(best, func(i, j int) bool { return best[i].Dist < best[j].Dist })
		if len(best) > k {
			best = best[:k]
		}
	}
	m := stats.QueryMetrics{NPE: qs.npe, NOE: qs.noe, SVG: qs.svgSize(), CPU: time.Since(start), Reach: qs.reachValue()}
	return best, m
}
