package core

import (
	"math"
	"slices"
	"sort"
	"time"

	"connquery/internal/geom"
	"connquery/internal/interval"
	"connquery/internal/stats"
	"connquery/internal/visgraph"
)

// kEntry is one interval of the COkNN result list: Owners are the (up to k)
// obstructed nearest neighbors over Span, each with the distance function
// valid on that span.
type kEntry struct {
	Span   geom.Span
	Owners []Owner
}

// COkNN answers a continuous obstructed k-nearest-neighbor query (§4.5).
// The outer loop is Algorithm 4's best-first scan with the generalized
// pruning bound RLMAX_k = max_i maxodist(ONNS_i, R_i endpoints); the inner
// merge maintains the exact k-level of the candidate distance envelope using
// the same quadratic crossing machinery as the k = 1 Split function.
func (e *Engine) COkNN(q geom.Segment, k int) (*KResult, stats.QueryMetrics) {
	if k < 1 {
		k = 1
	}
	start := time.Now()
	var snapD, snapO int64
	if e.DataCounter != nil {
		snapD = e.DataCounter.Faults()
	}
	if e.ObstCounter != nil {
		snapO = e.ObstCounter.Faults()
	}

	qs := e.newQueryState(q)
	defer e.release(qs)
	kl := []kEntry{{Span: geom.Span{Lo: 0, Hi: 1}}}

	for {
		qs.poll()
		bound, ok := qs.peekPointBound()
		if thresh := rlkMax(q, kl, k); !ok || bound >= thresh {
			qs.noteStop(thresh, ok)
			break
		}
		item, _, _ := qs.nextPoint()
		p := item.Point()
		qs.npe++

		qs.maybeResetVG()
		pNode := qs.vg.AddPoint(p, visgraph.KindTransient)
		qs.ior(pNode)
		cpl := qs.computeCPL(pNode)
		qs.vg.RemovePoint(pNode)
		kl = qs.mergeK(kl, item.ID, p, cpl, k)
	}

	m := stats.QueryMetrics{
		NPE:   qs.npe,
		NOE:   qs.noe,
		SVG:   qs.svgSize(),
		CPU:   time.Since(start),
		Reach: qs.reachValue(),
	}
	if e.DataCounter != nil {
		m.FaultsData = e.DataCounter.Faults() - snapD
	}
	if e.ObstCounter != nil {
		m.FaultsObst = e.ObstCounter.Faults() - snapO
	}
	return &KResult{Q: q, K: k, Tuples: finalizeKL(q, kl), MaxDist: rlkMax(q, kl, k)}, m
}

// mergeK folds a candidate point's CPL into the k-result list.
func (qs *queryState) mergeK(kl []kEntry, pid int32, p geom.Point, cpl CPL, k int) []kEntry {
	q := qs.q
	var out []kEntry
	i, j := 0, 0
	cursor := 0.0
	for i < len(kl) && j < len(cpl) {
		hi := math.Min(kl[i].Span.Hi, cpl[j].Span.Hi)
		cell := geom.Span{Lo: cursor, Hi: hi}
		if !cell.Empty() {
			out = append(out, qs.resolveKCell(q, cell, kl[i], pid, p, cpl[j], k)...)
		}
		cursor = hi
		if kl[i].Span.Hi <= hi+interval.Eps {
			i++
		}
		if cpl[j].Span.Hi <= hi+interval.Eps {
			j++
		}
	}
	for ; i < len(kl); i++ {
		cell := geom.Span{Lo: cursor, Hi: kl[i].Span.Hi}
		if !cell.Empty() {
			e := kl[i]
			e.Span = cell
			out = append(out, e)
		}
		cursor = kl[i].Span.Hi
	}
	return normalizeKL(out)
}

// resolveKCell updates one atomic cell's owner set with the candidate.
func (qs *queryState) resolveKCell(q geom.Segment, cell geom.Span, old kEntry, pid int32, p geom.Point, ce CPLEntry, k int) []kEntry {
	if !ce.Valid {
		old.Span = cell
		return []kEntry{old}
	}
	cand := Owner{PID: pid, P: p, Fn: ce.Fn}
	if len(old.Owners) < k {
		owners := append(append([]Owner(nil), old.Owners...), cand)
		return []kEntry{{Span: cell, Owners: owners}}
	}
	// Full owner set: subdivide the cell at every pairwise crossing among
	// owners ∪ {cand}. Within each sub-cell the ranking of all k+1 distance
	// functions is fixed, so the k-set is decided by a midpoint evaluation.
	all := append(append([]Owner(nil), old.Owners...), cand)
	cuts := append(qs.cutScratch[:0], cell.Lo, cell.Hi)
	for a := 0; a < len(all); a++ {
		for b := a + 1; b < len(all); b++ {
			cuts = appendQuadraticCrossings(cuts, q, cell, all[a].Fn, all[b].Fn)
		}
	}
	sort.Float64s(cuts)
	qs.cutScratch = cuts[:0]
	var out []kEntry
	for i := 1; i < len(cuts); i++ {
		sub := geom.Span{Lo: cuts[i-1], Hi: cuts[i]}
		if sub.Len() <= splitEps {
			continue
		}
		mid := sub.Mid()
		ranked := append([]Owner(nil), all...)
		slices.SortStableFunc(ranked, func(a, b Owner) int {
			da, db := a.Fn.eval(q, mid), b.Fn.eval(q, mid)
			switch {
			case da < db:
				return -1
			case da > db:
				return 1
			}
			return 0
		})
		out = append(out, kEntry{Span: sub, Owners: ranked[:k]})
	}
	if len(out) == 0 {
		old.Span = cell
		return []kEntry{old}
	}
	out[0].Span.Lo = cell.Lo
	out[len(out)-1].Span.Hi = cell.Hi
	return out
}

// rlkMax is the §4.5 generalized pruning bound: +Inf while any interval has
// fewer than k owners, otherwise the maximum over intervals of the maximal
// owner distance at the interval endpoints (maxodist).
func rlkMax(q geom.Segment, kl []kEntry, k int) float64 {
	m := 0.0
	for _, e := range kl {
		if len(e.Owners) < k {
			return math.Inf(1)
		}
		for _, o := range e.Owners {
			m = math.Max(m, math.Max(o.Fn.eval(q, e.Span.Lo), o.Fn.eval(q, e.Span.Hi)))
		}
	}
	return m
}

// normalizeKL merges adjacent entries whose owner lists are identical
// (same PIDs and same distance functions).
func normalizeKL(kl []kEntry) []kEntry {
	slices.SortFunc(kl, func(a, b kEntry) int {
		switch {
		case a.Span.Lo < b.Span.Lo:
			return -1
		case a.Span.Lo > b.Span.Lo:
			return 1
		}
		return 0
	})
	out := kl[:0]
	for _, e := range kl {
		if e.Span.Empty() {
			continue
		}
		if n := len(out); n > 0 && sameOwners(out[n-1].Owners, e.Owners) && e.Span.Lo-out[n-1].Span.Hi <= interval.Eps {
			out[n-1].Span.Hi = e.Span.Hi
		} else {
			out = append(out, e)
		}
	}
	return out
}

func sameOwners(a, b []Owner) bool {
	if len(a) != len(b) {
		return false
	}
	used := make([]bool, len(b))
outer:
	for _, oa := range a {
		for i, ob := range b {
			if !used[i] && oa.PID == ob.PID && oa.Fn.CP.Eq(ob.Fn.CP) && math.Abs(oa.Fn.Base-ob.Fn.Base) <= geom.Eps {
				used[i] = true
				continue outer
			}
		}
		return false
	}
	return true
}

// finalizeKL converts internal entries to user-facing tuples: adjacent
// entries with equal owner PID sets merge, and owners are sorted by their
// distance at the span midpoint.
func finalizeKL(q geom.Segment, kl []kEntry) []KTuple {
	var out []KTuple
	for _, e := range kl {
		ids := ownerIDSet(e.Owners)
		if n := len(out); n > 0 && equalIDSets(ownerIDSet(out[n-1].Owners), ids) {
			out[n-1].Span.Hi = e.Span.Hi
			continue
		}
		owners := append([]Owner(nil), e.Owners...)
		mid := e.Span.Mid()
		sort.SliceStable(owners, func(i, j int) bool {
			return owners[i].Fn.eval(q, mid) < owners[j].Fn.eval(q, mid)
		})
		out = append(out, KTuple{Span: e.Span, Owners: owners})
	}
	return out
}

func ownerIDSet(os []Owner) []int32 {
	ids := make([]int32, len(os))
	for i, o := range os {
		ids[i] = o.PID
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func equalIDSets(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
