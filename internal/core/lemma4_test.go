package core

import (
	"math"
	"math/rand"
	"testing"

	"connquery/internal/geom"
	"connquery/internal/visgraph"
)

// Lemma 4 / Theorem 2: after IOR stabilizes for a point p, every obstacle
// with mindist(o, q) <= max(|SP(p,S)|, |SP(p,E)|) must have been inserted
// into the local visibility graph — that is exactly the set that can affect
// obstructed distances from p to any point of q.
func TestLemma4AllRelevantObstaclesLoaded(t *testing.T) {
	r := rand.New(rand.NewSource(831))
	for trial := 0; trial < 30; trial++ {
		sc := randScene(r, 1, 2+r.Intn(10), 100)
		e := sc.engine(Options{}, false)
		qs := e.newQueryState(sc.q)
		pNode := qs.vg.AddPoint(sc.points[0], visgraph.KindTransient)
		dS, dE := qs.ior(pNode)
		if math.IsInf(math.Max(dS, dE), 1) {
			continue
		}
		bound := math.Max(dS, dE)

		loaded := map[geom.Rect]bool{}
		for _, o := range qs.vg.Obstacles() {
			loaded[o] = true
		}
		for _, o := range sc.obstacles {
			if o.DistToSegment(sc.q) <= bound-1e-9 && !loaded[o] {
				t.Fatalf("trial %d: obstacle %v (mindist %v <= bound %v) not loaded",
					trial, o, o.DistToSegment(sc.q), bound)
			}
		}
	}
}

// The shared local VG must make the obstacle source single-pass: evaluating
// many points never re-loads an obstacle (NOE never exceeds |O|).
func TestIORSinglePassOverObstacles(t *testing.T) {
	r := rand.New(rand.NewSource(833))
	for trial := 0; trial < 10; trial++ {
		sc := randScene(r, 20+r.Intn(20), 2+r.Intn(10), 100)
		e := sc.engine(Options{}, false)
		_, m := e.CONN(sc.q)
		if m.NOE > len(sc.obstacles) {
			t.Fatalf("trial %d: NOE %d exceeds |O| %d — an obstacle was loaded twice",
				trial, m.NOE, len(sc.obstacles))
		}
	}
}
