package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"connquery/internal/geom"
	"connquery/internal/rtree"
	"connquery/internal/visgraph"
)

// scene bundles a randomly generated test instance.
type scene struct {
	points    []geom.Point
	obstacles []geom.Rect
	q         geom.Segment
}

// randScene draws a well-formed instance: points outside obstacle
// interiors, query segment not crossing any obstacle interior.
func randScene(r *rand.Rand, nPts, nObs int, domain float64) scene {
	var sc scene
	for len(sc.obstacles) < nObs {
		lo := geom.Pt(r.Float64()*domain, r.Float64()*domain)
		o := geom.R(lo.X, lo.Y, lo.X+1+r.Float64()*domain/6, lo.Y+1+r.Float64()*domain/6)
		sc.obstacles = append(sc.obstacles, o)
	}
	for len(sc.points) < nPts {
		p := geom.Pt(r.Float64()*domain, r.Float64()*domain)
		ok := true
		for _, o := range sc.obstacles {
			if o.ContainsOpen(p) {
				ok = false
				break
			}
		}
		if ok {
			sc.points = append(sc.points, p)
		}
	}
	for {
		a := geom.Pt(r.Float64()*domain, r.Float64()*domain)
		b := geom.Pt(a.X+(r.Float64()-0.5)*domain/2, a.Y+(r.Float64()-0.5)*domain/2)
		q := geom.Seg(a, b)
		if q.Degenerate() {
			continue
		}
		clear := true
		for _, o := range sc.obstacles {
			if o.BlocksSegment(q) || o.ContainsOpen(a) || o.ContainsOpen(b) {
				clear = false
				break
			}
		}
		if clear {
			sc.q = q
			return sc
		}
	}
}

// engines builds two-tree and one-tree engines over the scene.
func (sc scene) engine(opts Options, oneTree bool) *Engine {
	if oneTree {
		uni := rtree.New(rtree.Options{PageSize: 512})
		for i, p := range sc.points {
			uni.Insert(rtree.PointItem(int32(i), p))
		}
		for i, o := range sc.obstacles {
			uni.Insert(rtree.ObstacleItem(int32(i), o))
		}
		return &Engine{Unified: uni, Obstacles: sc.obstacles, Opts: opts}
	}
	data := rtree.New(rtree.Options{PageSize: 512})
	for i, p := range sc.points {
		data.Insert(rtree.PointItem(int32(i), p))
	}
	obst := rtree.New(rtree.Options{PageSize: 512})
	for i, o := range sc.obstacles {
		obst.Insert(rtree.ObstacleItem(int32(i), o))
	}
	return &Engine{Data: data, Obst: obst, Obstacles: sc.obstacles, Opts: opts}
}

// checkCONNAgainstOracle verifies that at every sample position the result's
// claimed owner distance equals the exact brute-force minimum.
func checkCONNAgainstOracle(t *testing.T, sc scene, res *Result, samples int, label string) {
	t.Helper()
	// Result list structural invariants (Definition 6).
	if len(res.Tuples) == 0 {
		t.Fatalf("%s: empty result", label)
	}
	if res.Tuples[0].Span.Lo > 1e-9 || res.Tuples[len(res.Tuples)-1].Span.Hi < 1-1e-9 {
		t.Fatalf("%s: tuples do not cover q: %+v", label, res.Tuples)
	}
	for i := 1; i < len(res.Tuples); i++ {
		if math.Abs(res.Tuples[i].Span.Lo-res.Tuples[i-1].Span.Hi) > 1e-9 {
			t.Fatalf("%s: tuples not contiguous: %+v", label, res.Tuples)
		}
		if res.Tuples[i].PID == res.Tuples[i-1].PID {
			t.Fatalf("%s: adjacent tuples share owner %d (split point is fake)", label, res.Tuples[i].PID)
		}
	}
	for k := 0; k <= samples; k++ {
		tt := float64(k) / float64(samples)
		want := BruteCONNDistanceAt(sc.points, sc.obstacles, sc.q, tt)
		tu, ok := res.OwnerAt(tt)
		if !ok {
			t.Fatalf("%s: no owner at t=%v", label, tt)
		}
		if tu.PID == NoOwner {
			if !math.IsInf(want, 1) {
				t.Fatalf("%s: t=%v reported unreachable but oracle dist=%v", label, tt, want)
			}
			continue
		}
		got := visgraph.BruteObstructedDist(tu.P, sc.q.At(tt), sc.obstacles)
		if math.Abs(got-want) > 1e-6*(1+want) {
			// Near a split point, either neighbor is acceptable within tol.
			nearSplit := false
			for _, s := range res.SplitPoints() {
				if math.Abs(tt-s) < 1e-4 {
					nearSplit = true
				}
			}
			if !nearSplit {
				t.Fatalf("%s: t=%v owner %d dist %v, oracle %v\nq=%v\npoints=%v\nobstacles=%v\ntuples=%+v",
					label, tt, tu.PID, got, want, sc.q, sc.points, sc.obstacles, res.Tuples)
			}
		}
	}
}

func TestCONNSinglePointNoObstacles(t *testing.T) {
	sc := scene{
		points: []geom.Point{geom.Pt(5, 5)},
		q:      geom.Seg(geom.Pt(0, 0), geom.Pt(10, 0)),
	}
	e := sc.engine(Options{}, false)
	res, m := e.CONN(sc.q)
	if len(res.Tuples) != 1 || res.Tuples[0].PID != 0 {
		t.Fatalf("tuples = %+v", res.Tuples)
	}
	if m.NPE != 1 {
		t.Fatalf("NPE = %d", m.NPE)
	}
}

func TestCONNEqualsCNNWithoutObstacles(t *testing.T) {
	r := rand.New(rand.NewSource(301))
	for trial := 0; trial < 25; trial++ {
		sc := randScene(r, 30, 0, 100)
		e := sc.engine(Options{}, false)
		conn, _ := e.CONN(sc.q)
		cnn, _ := e.CNN(sc.q)
		if len(conn.Tuples) != len(cnn.Tuples) {
			t.Fatalf("trial %d: CONN %d tuples vs CNN %d\nconn=%+v\ncnn=%+v",
				trial, len(conn.Tuples), len(cnn.Tuples), conn.Tuples, cnn.Tuples)
		}
		for i := range conn.Tuples {
			a, b := conn.Tuples[i], cnn.Tuples[i]
			if a.PID != b.PID || math.Abs(a.Span.Lo-b.Span.Lo) > 1e-6 || math.Abs(a.Span.Hi-b.Span.Hi) > 1e-6 {
				t.Fatalf("trial %d tuple %d: CONN %+v vs CNN %+v", trial, i, a, b)
			}
		}
	}
}

func TestCONNFigure1Scenario(t *testing.T) {
	// A Figure 1(b)-style scenario: an obstacle between the segment start
	// and its Euclidean NN changes both the answer object and the split
	// points relative to CNN.
	d := geom.Pt(5, 3)  // Euclidean NN of S (dist 4.24), blocked by the wall
	a := geom.Pt(2, -6) // unblocked below q, Euclidean dist 6 from S
	q := geom.Seg(geom.Pt(2, 0), geom.Pt(14, 0))
	sc := scene{
		points:    []geom.Point{d, a},
		obstacles: []geom.Rect{geom.R(0, 1, 10, 2)}, // wide wall between q and d
		q:         q,
	}
	e := sc.engine(Options{}, false)
	cnn, _ := e.CNN(q)
	conn, _ := e.CONN(q)
	// Euclidean: d (PID 0) owns the start of q.
	if cnn.Tuples[0].PID != 0 {
		t.Fatalf("CNN start owner = %d, want 0 (fixture drifted)", cnn.Tuples[0].PID)
	}
	// Obstructed: the wall pushes d's distance up; a (PID 1) owns the start.
	if conn.Tuples[0].PID != 1 {
		t.Fatalf("CONN start owner = %d, want 1\ntuples=%+v", conn.Tuples[0].PID, conn.Tuples)
	}
	checkCONNAgainstOracle(t, sc, conn, 120, "figure1")
}

func TestCONNRandomAgainstOracle(t *testing.T) {
	r := rand.New(rand.NewSource(303))
	for trial := 0; trial < 30; trial++ {
		sc := randScene(r, 2+r.Intn(25), 1+r.Intn(8), 100)
		e := sc.engine(Options{}, false)
		res, m := e.CONN(sc.q)
		checkCONNAgainstOracle(t, sc, res, 60, "random")
		if m.NPE == 0 || m.NPE > len(sc.points) {
			t.Fatalf("trial %d: NPE = %d of %d", trial, m.NPE, len(sc.points))
		}
	}
}

func TestCONNOneTreeMatchesTwoTree(t *testing.T) {
	r := rand.New(rand.NewSource(307))
	for trial := 0; trial < 25; trial++ {
		sc := randScene(r, 2+r.Intn(20), 1+r.Intn(8), 100)
		two := sc.engine(Options{}, false)
		one := sc.engine(Options{}, true)
		r2, _ := two.CONN(sc.q)
		r1, _ := one.CONN(sc.q)
		if len(r1.Tuples) != len(r2.Tuples) {
			t.Fatalf("trial %d: 1T %d tuples vs 2T %d\n1T=%+v\n2T=%+v",
				trial, len(r1.Tuples), len(r2.Tuples), r1.Tuples, r2.Tuples)
		}
		for i := range r1.Tuples {
			a, b := r1.Tuples[i], r2.Tuples[i]
			if a.PID != b.PID || math.Abs(a.Span.Lo-b.Span.Lo) > 1e-6 {
				t.Fatalf("trial %d tuple %d: 1T %+v vs 2T %+v", trial, i, a, b)
			}
		}
	}
}

func TestCONNAblationsAgree(t *testing.T) {
	r := rand.New(rand.NewSource(311))
	variants := []Options{
		{},
		{DisableLemma1: true},
		{DisableLemma6: true},
		{DisableLemma7: true},
		{UseBisectionSolver: true},
		{DisableVGReuse: true},
		{DisableLemma1: true, DisableLemma6: true, DisableLemma7: true},
	}
	for trial := 0; trial < 12; trial++ {
		sc := randScene(r, 2+r.Intn(15), 1+r.Intn(6), 100)
		base, _ := sc.engine(variants[0], false).CONN(sc.q)
		for vi, opts := range variants[1:] {
			res, _ := sc.engine(opts, false).CONN(sc.q)
			if len(res.Tuples) != len(base.Tuples) {
				t.Fatalf("trial %d variant %d (%+v): %d tuples vs base %d\nvar=%+v\nbase=%+v",
					trial, vi+1, opts, len(res.Tuples), len(base.Tuples), res.Tuples, base.Tuples)
			}
			for i := range res.Tuples {
				a, b := res.Tuples[i], base.Tuples[i]
				if a.PID != b.PID || math.Abs(a.Span.Lo-b.Span.Lo) > 1e-4 {
					t.Fatalf("trial %d variant %d tuple %d: %+v vs %+v", trial, vi+1, i, a, b)
				}
			}
		}
	}
}

func TestCOkNNMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(313))
	for trial := 0; trial < 15; trial++ {
		k := 1 + r.Intn(3)
		sc := randScene(r, k+2+r.Intn(12), 1+r.Intn(6), 100)
		e := sc.engine(Options{}, false)
		res, _ := e.COkNN(sc.q, k)
		for s := 0; s <= 40; s++ {
			tt := float64(s) / 40
			want := BruteKDistancesAt(sc.points, sc.obstacles, sc.q, tt, k)
			var tuple *KTuple
			for i := range res.Tuples {
				if res.Tuples[i].Span.Contains(tt) {
					tuple = &res.Tuples[i]
					break
				}
			}
			if tuple == nil {
				t.Fatalf("trial %d: t=%v uncovered", trial, tt)
			}
			if len(tuple.Owners) != len(want) {
				t.Fatalf("trial %d t=%v: %d owners, oracle %d", trial, tt, len(tuple.Owners), len(want))
			}
			nearBoundary := math.Abs(tt-tuple.Span.Lo) < 1e-4 || math.Abs(tt-tuple.Span.Hi) < 1e-4
			if nearBoundary {
				continue
			}
			// Owners within a span form a set; their ranking may swap inside
			// the span, so compare the sorted distance multisets.
			got := make([]float64, len(tuple.Owners))
			for i, o := range tuple.Owners {
				got[i] = visgraph.BruteObstructedDist(o.P, sc.q.At(tt), sc.obstacles)
			}
			sort.Float64s(got)
			for i := range got {
				if math.Abs(got[i]-want[i]) > 1e-5*(1+want[i]) {
					t.Fatalf("trial %d t=%v rank %d: dist %v, oracle %v\nowners=%+v want=%v",
						trial, tt, i, got[i], want[i], tuple.Owners, want)
				}
			}
		}
	}
}

func TestCOkNNK1MatchesCONN(t *testing.T) {
	r := rand.New(rand.NewSource(317))
	for trial := 0; trial < 20; trial++ {
		sc := randScene(r, 2+r.Intn(15), 1+r.Intn(6), 100)
		e := sc.engine(Options{}, false)
		conn, _ := e.CONN(sc.q)
		k1, _ := e.COkNN(sc.q, 1)
		// Compare owners at samples (tuple boundaries may differ slightly).
		for s := 0; s <= 50; s++ {
			tt := float64(s) / 50
			a, _ := conn.OwnerAt(tt)
			ids, _ := k1.OwnerSetAt(tt)
			nearSplit := false
			for _, sp := range conn.SplitPoints() {
				if math.Abs(tt-sp) < 1e-4 {
					nearSplit = true
				}
			}
			for _, tu := range k1.Tuples {
				if math.Abs(tt-tu.Span.Lo) < 1e-4 || math.Abs(tt-tu.Span.Hi) < 1e-4 {
					nearSplit = true
				}
			}
			if nearSplit {
				continue
			}
			if len(ids) != 1 || ids[0] != a.PID {
				// Ties: accept equal distances.
				if len(ids) == 1 {
					da := visgraph.BruteObstructedDist(a.P, sc.q.At(tt), sc.obstacles)
					var pb geom.Point
					for _, tu := range k1.Tuples {
						if tu.Span.Contains(tt) {
							pb = tu.Owners[0].P
						}
					}
					db := visgraph.BruteObstructedDist(pb, sc.q.At(tt), sc.obstacles)
					if math.Abs(da-db) < 1e-6*(1+da) {
						continue
					}
				}
				t.Fatalf("trial %d t=%v: CONN owner %d vs COkNN(1) %v", trial, tt, a.PID, ids)
			}
		}
	}
}

func TestONNMatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(319))
	for trial := 0; trial < 20; trial++ {
		sc := randScene(r, 3+r.Intn(15), 1+r.Intn(6), 100)
		e := sc.engine(Options{}, false)
		pt := sc.q.At(r.Float64())
		k := 1 + r.Intn(3)
		nbrs, _ := e.ONN(pt, k)
		want := BruteKDistancesAt(sc.points, sc.obstacles, geom.Seg(pt, pt), 0, k)
		if len(nbrs) != len(want) && len(nbrs) != min(k, len(sc.points)) {
			t.Fatalf("trial %d: %d neighbors", trial, len(nbrs))
		}
		for i := range nbrs {
			if math.Abs(nbrs[i].Dist-want[i]) > 1e-6*(1+want[i]) {
				t.Fatalf("trial %d neighbor %d: dist %v, oracle %v", trial, i, nbrs[i].Dist, want[i])
			}
		}
	}
}

func TestNaiveCONNAgreesWithCONN(t *testing.T) {
	r := rand.New(rand.NewSource(323))
	for trial := 0; trial < 8; trial++ {
		sc := randScene(r, 3+r.Intn(10), 1+r.Intn(5), 100)
		e := sc.engine(Options{}, false)
		exact, _ := e.CONN(sc.q)
		naive, _ := e.NaiveCONN(sc.q, 200)
		// Sampled agreement on owner distances.
		for s := 0; s <= 40; s++ {
			tt := float64(s) / 40
			a, _ := exact.OwnerAt(tt)
			b, okB := naive.OwnerAt(tt)
			if !okB {
				t.Fatalf("trial %d: naive uncovered at %v", trial, tt)
			}
			if a.PID == b.PID {
				continue
			}
			da := visgraph.BruteObstructedDist(a.P, sc.q.At(tt), sc.obstacles)
			db := visgraph.BruteObstructedDist(b.P, sc.q.At(tt), sc.obstacles)
			if math.Abs(da-db) > 1e-3*(1+da) {
				t.Fatalf("trial %d t=%v: exact owner %d (d=%v) vs naive %d (d=%v)", trial, tt, a.PID, da, b.PID, db)
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
