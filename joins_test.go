package connquery

import (
	"context"
	"math"
	"testing"
)

func TestEDistanceJoinPublic(t *testing.T) {
	db := smallDB(t)
	queries := []Point{Pt(12, 12), Pt(92, 12)}
	pairs, _, err := Run(context.Background(), db, EDistanceJoinRequest{Queries: queries, E: 5})
	if err != nil {
		t.Fatalf("EDistanceJoin: %v", err)
	}
	// Each query point is within ~3 units of exactly one data point.
	if len(pairs) != 2 {
		t.Fatalf("pairs = %+v, want 2", pairs)
	}
	seen := map[int]int32{}
	for _, pr := range pairs {
		seen[pr.QIdx] = pr.PID
	}
	if seen[0] != 0 || seen[1] != 2 {
		t.Fatalf("pair owners = %v", seen)
	}
	if _, _, err := Run(context.Background(), db, EDistanceJoinRequest{Queries: queries, E: -1}); err == nil {
		t.Fatal("negative e accepted")
	}
}

func TestClosestPairPublic(t *testing.T) {
	db := smallDB(t)
	pair, _, _ := Run(context.Background(), db, ClosestPairRequest{Queries: []Point{Pt(11, 11), Pt(70, 70)}})
	if pair.QIdx != 0 || pair.PID != 0 {
		t.Fatalf("pair = %+v, want q0 with point 0", pair)
	}
	if math.Abs(pair.Dist-math.Sqrt2) > 1e-9 {
		t.Fatalf("dist = %v, want sqrt(2)", pair.Dist)
	}
	empty, _, _ := Run(context.Background(), db, ClosestPairRequest{Queries: nil})
	if empty.QIdx != -1 {
		t.Fatalf("empty query set: %+v", empty)
	}
}

func TestDistanceSemiJoinPublic(t *testing.T) {
	db := smallDB(t)
	pairs, _, _ := Run(context.Background(), db, DistanceSemiJoinRequest{Queries: []Point{Pt(11, 11), Pt(89, 11), Pt(50, 89)}})
	if len(pairs) != 3 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	for i := 1; i < len(pairs); i++ {
		if pairs[i].Dist < pairs[i-1].Dist {
			t.Fatal("not sorted by distance")
		}
	}
}

func TestVisibleKNNPublic(t *testing.T) {
	// Obstacle occludes point 1 from the query position; VkNN must skip it
	// even though it is Euclidean-nearest.
	points := []Point{Pt(50, 70), Pt(50, 30)}
	obstacles := []Rect{R(40, 35, 60, 45)} // between (50,50) and point 1
	db, err := Open(points, obstacles)
	if err != nil {
		t.Fatal(err)
	}
	nbrs, _, err := Run(context.Background(), db, VisibleKNNRequest{P: Pt(50, 50), K: 1})
	if err != nil || len(nbrs) != 1 {
		t.Fatalf("VisibleKNN: %v %v", nbrs, err)
	}
	if nbrs[0].PID != 0 {
		t.Fatalf("VkNN returned occluded point: %+v", nbrs)
	}
	// With k=2, only one point is visible at all.
	nbrs, _, _ = Run(context.Background(), db, VisibleKNNRequest{P: Pt(50, 50), K: 2})
	if len(nbrs) != 1 {
		t.Fatalf("k=2 returned %d visible points, want 1", len(nbrs))
	}
	if _, _, err := Run(context.Background(), db, VisibleKNNRequest{P: Pt(0, 0), K: 0}); err == nil {
		t.Fatal("k=0 accepted")
	}
}
