package connquery

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"connquery/internal/anscache"
	"connquery/internal/core"
	"connquery/internal/flatgeom"
	"connquery/internal/lru"
	"connquery/internal/rtree"
	"connquery/internal/stats"
)

// Checkpoint format: the durable tier's epoch-stamped superset of the v1
// snapshot. Where Save compacts deleted objects away (IDs are reassigned on
// Load), a checkpoint must preserve the exact ID space — WAL replay assigns
// the next PID as len(points) and references logged IDs — so it stores the
// FULL append-only arrays plus the tombstone ID lists and the epoch, with a
// CRC-32C trailer so a damaged file is detected rather than replayed.
//
//	magic    [8]byte  "CONNQv2\n"
//	epoch    uint64
//	nPoints  uint64   all points ever inserted, deleted included
//	points   nPoints * (x, y float64)
//	nDeadPts uint64
//	deadPts  nDeadPts * uint32 (ascending PIDs)
//	nObs     uint64
//	obs      nObs * (minX, minY, maxX, maxY float64)
//	nDeadObs uint64
//	deadObs  nDeadObs * uint32 (ascending OIDs)
//	crc      uint32   CRC-32C of everything above
//
// Files are named ckpt-%016x (hex epoch) and written atomically: temp file,
// fsync, rename, directory fsync. Recovery picks the highest-named file.

var checkpointMagic = [8]byte{'C', 'O', 'N', 'N', 'Q', 'v', '2', '\n'}

const ckptPrefix = "ckpt-"

func checkpointName(epoch uint64) string { return fmt.Sprintf("%s%016x", ckptPrefix, epoch) }

// ckptData is a decoded checkpoint: the exact durable image of a version's
// storage, sufficient to rebuild the DB at its epoch with IDs preserved.
type ckptData struct {
	epoch     uint64
	points    []Point
	obstacles []Rect
	deadPts   map[int32]bool
	deadObs   map[int32]bool
}

// writeCheckpoint encodes v into w.
func writeCheckpoint(w io.Writer, v *version) error {
	h := crc32.New(crc32.MakeTable(crc32.Castagnoli))
	bw := bufio.NewWriter(io.MultiWriter(w, h))
	if _, err := bw.Write(checkpointMagic[:]); err != nil {
		return err
	}
	writeU64 := func(x uint64) error { return binary.Write(bw, binary.LittleEndian, x) }
	writeF64 := func(x float64) error {
		return binary.Write(bw, binary.LittleEndian, math.Float64bits(x))
	}
	writeIDs := func(m map[int32]bool) error {
		ids := make([]int32, 0, len(m))
		for id := range m {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		if err := writeU64(uint64(len(ids))); err != nil {
			return err
		}
		for _, id := range ids {
			if err := binary.Write(bw, binary.LittleEndian, uint32(id)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := writeU64(v.epoch); err != nil {
		return err
	}
	if err := writeU64(uint64(len(v.points))); err != nil {
		return err
	}
	for _, p := range v.points {
		if err := writeF64(p.X); err != nil {
			return err
		}
		if err := writeF64(p.Y); err != nil {
			return err
		}
	}
	if err := writeIDs(v.deletedPts); err != nil {
		return err
	}
	if err := writeU64(uint64(len(v.obstacles))); err != nil {
		return err
	}
	for _, o := range v.obstacles {
		for _, x := range [4]float64{o.MinX, o.MinY, o.MaxX, o.MaxY} {
			if err := writeF64(x); err != nil {
				return err
			}
		}
	}
	if err := writeIDs(v.deletedObs); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// The trailer hashes everything flushed so far; it goes to w alone.
	return binary.Write(w, binary.LittleEndian, h.Sum32())
}

// parseCheckpoint decodes an in-memory checkpoint image, verifying the
// CRC-32C trailer first so a torn or bit-rotted file can never be
// half-applied.
func parseCheckpoint(data []byte) (*ckptData, error) {
	if len(data) < len(checkpointMagic)+8+4 {
		return nil, fmt.Errorf("connquery: checkpoint: truncated file (%d bytes)", len(data))
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := binary.LittleEndian.Uint32(trailer), crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli)); got != want {
		return nil, fmt.Errorf("connquery: checkpoint: CRC mismatch (file %08x, computed %08x)", got, want)
	}
	if [8]byte(body[:8]) != checkpointMagic {
		return nil, fmt.Errorf("connquery: checkpoint: bad magic %q", body[:8])
	}
	off := 8
	readU64 := func() (uint64, error) {
		if off+8 > len(body) {
			return 0, io.ErrUnexpectedEOF
		}
		x := binary.LittleEndian.Uint64(body[off:])
		off += 8
		return x, nil
	}
	readF64 := func() (float64, error) {
		bits, err := readU64()
		if err != nil {
			return 0, err
		}
		x := math.Float64frombits(bits)
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0, fmt.Errorf("non-finite coordinate")
		}
		return x, nil
	}
	const maxObjects = 1 << 28
	readIDs := func(bound int) (map[int32]bool, error) {
		n, err := readU64()
		if err != nil {
			return nil, err
		}
		if n > uint64(bound) {
			return nil, fmt.Errorf("implausible tombstone count %d over %d objects", n, bound)
		}
		m := make(map[int32]bool, n)
		for i := uint64(0); i < n; i++ {
			if off+4 > len(body) {
				return nil, io.ErrUnexpectedEOF
			}
			id := binary.LittleEndian.Uint32(body[off:])
			off += 4
			if int64(id) >= int64(bound) {
				return nil, fmt.Errorf("tombstone ID %d out of range", id)
			}
			m[int32(id)] = true
		}
		return m, nil
	}

	c := &ckptData{}
	epoch, err := readU64()
	if err != nil {
		return nil, fmt.Errorf("connquery: checkpoint: epoch: %w", err)
	}
	if epoch == 0 {
		return nil, fmt.Errorf("connquery: checkpoint: zero epoch")
	}
	c.epoch = epoch
	n, err := readU64()
	if err != nil {
		return nil, fmt.Errorf("connquery: checkpoint: point count: %w", err)
	}
	if n > maxObjects {
		return nil, fmt.Errorf("connquery: checkpoint: implausible point count %d", n)
	}
	c.points = make([]Point, n)
	for i := range c.points {
		if c.points[i].X, err = readF64(); err != nil {
			return nil, fmt.Errorf("connquery: checkpoint: point %d: %w", i, err)
		}
		if c.points[i].Y, err = readF64(); err != nil {
			return nil, fmt.Errorf("connquery: checkpoint: point %d: %w", i, err)
		}
	}
	if c.deadPts, err = readIDs(len(c.points)); err != nil {
		return nil, fmt.Errorf("connquery: checkpoint: dead points: %w", err)
	}
	m, err := readU64()
	if err != nil {
		return nil, fmt.Errorf("connquery: checkpoint: obstacle count: %w", err)
	}
	if m > maxObjects {
		return nil, fmt.Errorf("connquery: checkpoint: implausible obstacle count %d", m)
	}
	c.obstacles = make([]Rect, m)
	for i := range c.obstacles {
		var vals [4]float64
		for j := range vals {
			if vals[j], err = readF64(); err != nil {
				return nil, fmt.Errorf("connquery: checkpoint: obstacle %d: %w", i, err)
			}
		}
		c.obstacles[i] = Rect{MinX: vals[0], MinY: vals[1], MaxX: vals[2], MaxY: vals[3]}
	}
	if c.deadObs, err = readIDs(len(c.obstacles)); err != nil {
		return nil, fmt.Errorf("connquery: checkpoint: dead obstacles: %w", err)
	}
	if off != len(body) {
		return nil, fmt.Errorf("connquery: checkpoint: %d trailing bytes", len(body)-off)
	}
	return c, nil
}

// atomicWriteFile writes a file via temp file + fsync + rename + directory
// fsync, so the path either keeps its old contents or holds the complete
// new ones — never a truncated tail. write receives the temp file.
func atomicWriteFile(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-"+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := write(tmp); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeCheckpointFile persists v as dir's checkpoint at its epoch and
// removes older checkpoint files once the new one is durable. A crash
// between rename and removal leaves extra files; recovery always picks the
// highest epoch, so they are garbage, not ambiguity.
func writeCheckpointFile(dir string, v *version) error {
	path := filepath.Join(dir, checkpointName(v.epoch))
	if err := atomicWriteFile(path, func(w io.Writer) error { return writeCheckpoint(w, v) }); err != nil {
		return fmt.Errorf("connquery: checkpoint: %w", err)
	}
	names, err := listCheckpoints(dir)
	if err != nil {
		return fmt.Errorf("connquery: checkpoint: %w", err)
	}
	for _, name := range names {
		if name != checkpointName(v.epoch) {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return fmt.Errorf("connquery: checkpoint: %w", err)
			}
		}
	}
	return nil
}

// listCheckpoints returns dir's checkpoint file names in ascending epoch
// order.
func listCheckpoints(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && len(name) == len(ckptPrefix)+16 && name[:len(ckptPrefix)] == ckptPrefix {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// HasDurableState reports whether dir holds a recoverable durable store (a
// checkpoint written by a previous OpenDurable/OpenDurableSharded or
// Checkpoint call). connserve uses it to decide between recovering an
// existing -data-dir and bootstrapping a fresh one.
func HasDurableState(dir string) bool {
	names, err := listCheckpoints(dir)
	if err == nil && len(names) > 0 {
		return true
	}
	names, err = listCheckpoints(filepath.Join(dir, routerDirName))
	return err == nil && len(names) > 0
}

// loadLatestCheckpoint reads and parses dir's newest checkpoint. onPage,
// when non-nil, is charged once per pageSize-aligned page of the file —
// recovery's real-I/O accounting. Returns nil data (no error) when the
// directory holds no checkpoint at all.
func loadLatestCheckpoint(dir string, pageSize int, onPage func(int64)) (*ckptData, int64, error) {
	names, err := listCheckpoints(dir)
	if err != nil || len(names) == 0 {
		return nil, 0, err
	}
	path := filepath.Join(dir, names[len(names)-1])
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	if onPage != nil && pageSize > 0 {
		for off := 0; off < len(data); off += pageSize {
			onPage(ckptPageBase | int64(off/pageSize))
		}
	}
	c, err := parseCheckpoint(data)
	if err != nil {
		return nil, 0, fmt.Errorf("%s: %w", path, err)
	}
	return c, int64(len(data)), nil
}

// ckptPageBase namespaces checkpoint page IDs away from WAL segment page
// IDs in the shared recovery buffer.
const ckptPageBase = int64(1) << 48

// openAt rebuilds a DB at a checkpoint's exact state: the full append-only
// arrays (deleted objects included, so the ID space and every engine
// tie-break match the pre-crash instance), the tombstone sets, and the
// stored epoch. The R-trees bulk-load only live objects — retrieval order
// is deterministic by (distance, kind, ID), so answers and the
// machine-independent metrics are independent of tree build history. The
// point-inside-obstacle validation of Open is skipped: this data already
// passed it when the original mutations committed. Unlike Open, a world
// with zero live points is allowed (an empty shard recovering its
// tombstoned bootstrap dummy), though the point array itself must be
// non-empty.
func openAt(c *ckptData, cfg config) (*DB, error) {
	if len(c.points) == 0 {
		return nil, fmt.Errorf("connquery: checkpoint has no points")
	}
	if cfg.tuning.DisableVGReuse && cfg.oneTree {
		return nil, fmt.Errorf("connquery: DisableVGReuse is incompatible with WithOneTree")
	}
	db := &DB{
		cfg:    cfg,
		states: core.NewStatePool(),
		ownPts: true,
		ownObs: true,
		cache:  anscache.New(cfg.cacheBytes),
	}
	v := &version{
		epoch:      c.epoch,
		points:     c.points,
		obstacles:  c.obstacles,
		deletedPts: c.deadPts,
		deletedObs: c.deadObs,
	}
	if len(v.deletedPts) == 0 {
		v.deletedPts = nil
	}
	if len(v.deletedObs) == 0 {
		v.deletedObs = nil
	}

	var pointItems []rtree.Item
	for i, p := range v.points {
		if !v.deletedPts[int32(i)] {
			pointItems = append(pointItems, rtree.PointItem(int32(i), p))
		}
	}
	var obstItems []rtree.Item
	for i, o := range v.obstacles {
		if !v.deletedObs[int32(i)] {
			obstItems = append(obstItems, rtree.ObstacleItem(int32(i), o))
		}
	}

	eng := &core.Engine{
		Obstacles: v.obstacles,
		Kernel:    flatgeom.NewKernel(v.obstacles),
		Opts:      cfg.tuning,
		Epoch:     v.epoch,
		States:    db.states,
	}
	if cfg.oneTree {
		uni := rtree.New(rtree.Options{PageSize: cfg.pageSize})
		uni.BulkLoad(append(pointItems, obstItems...))
		counter := &stats.PageCounter{}
		if cfg.bufferPages > 0 {
			db.dataBuf = lru.New(cfg.bufferPages)
			counter.Buffer = db.dataBuf
		}
		uni.SetAccessRecorder(counter)
		eng.Unified = uni
		eng.DataCounter = counter
	} else {
		data := rtree.New(rtree.Options{PageSize: cfg.pageSize})
		data.BulkLoad(pointItems)
		obst := rtree.New(rtree.Options{PageSize: cfg.pageSize})
		obst.BulkLoad(obstItems)
		dc, oc := &stats.PageCounter{}, &stats.PageCounter{}
		if cfg.bufferPages > 0 {
			db.dataBuf = lru.New(cfg.bufferPages)
			db.obstBuf = lru.New(cfg.bufferPages)
			dc.Buffer = db.dataBuf
			oc.Buffer = db.obstBuf
		}
		data.SetAccessRecorder(dc)
		obst.SetAccessRecorder(oc)
		eng.Data, eng.Obst = data, obst
		eng.DataCounter, eng.ObstCounter = dc, oc
	}
	v.eng = eng
	db.cur.Store(v)
	return db, nil
}
