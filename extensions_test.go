package connquery

import (
	"context"
	"math"
	"testing"
)

func TestTrajectoryCONNPublic(t *testing.T) {
	db := smallDB(t)
	tr, m, err := Run(context.Background(), db, TrajectoryRequest{Waypoints: []Point{Pt(0, 0), Pt(100, 0), Pt(100, 100)}})
	if err != nil {
		t.Fatalf("TrajectoryCONN: %v", err)
	}
	if len(tr.Legs) != 2 {
		t.Fatalf("legs = %d", len(tr.Legs))
	}
	if m.NPE == 0 {
		t.Fatal("metrics empty")
	}
	if _, _, err := Run(context.Background(), db, TrajectoryRequest{Waypoints: []Point{Pt(0, 0)}}); err == nil {
		t.Fatal("single-waypoint trajectory accepted")
	}
	if _, _, err := Run(context.Background(), db, TrajectoryRequest{Waypoints: []Point{Pt(0, 0), Pt(0, 0)}}); err == nil {
		t.Fatal("all-degenerate trajectory accepted")
	}
}

func TestObstructedRangePublic(t *testing.T) {
	db := smallDB(t)
	// Radius reaching points 0 and 2 from the segment start area.
	nbrs, _, err := Run(context.Background(), db, RangeRequest{Center: Pt(10, 0), Radius: 15})
	if err != nil {
		t.Fatalf("ObstructedRange: %v", err)
	}
	if len(nbrs) != 1 || nbrs[0].PID != 0 {
		t.Fatalf("nbrs = %+v, want only point 0", nbrs)
	}
	if math.Abs(nbrs[0].Dist-10) > 1e-9 {
		t.Fatalf("dist = %v, want 10", nbrs[0].Dist)
	}
	all, _, err := Run(context.Background(), db, RangeRequest{Center: Pt(50, 50), Radius: 1e6})
	if err != nil || len(all) != db.NumPoints() {
		t.Fatalf("huge radius returned %d of %d (%v)", len(all), db.NumPoints(), err)
	}
	if _, _, err := Run(context.Background(), db, RangeRequest{Center: Pt(0, 0), Radius: -1}); err == nil {
		t.Fatal("negative radius accepted")
	}
}

// The obstructed range must respect obstacles: a point just behind a wall
// is Euclidean-near but obstructed-far.
func TestObstructedRangeRespectsWalls(t *testing.T) {
	points := []Point{Pt(0, 10)}
	obstacles := []Rect{R(-50, 4, 50, 6)} // wall between the origin and the point
	db, err := Open(points, obstacles)
	if err != nil {
		t.Fatal(err)
	}
	// Euclidean distance is 10, but the wall forces a ~100+ unit detour.
	if nbrs, _, _ := Run(context.Background(), db, RangeRequest{Center: Pt(0, 0), Radius: 20}); len(nbrs) != 0 {
		t.Fatalf("wall ignored: %+v", nbrs)
	}
	if nbrs, _, _ := Run(context.Background(), db, RangeRequest{Center: Pt(0, 0), Radius: 200}); len(nbrs) != 1 {
		t.Fatal("detour radius missed the point")
	}
}
