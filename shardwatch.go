package connquery

import (
	"context"
)

// Sharded watches. Semantics match DB.Watch — first Update at the revision
// current at subscribe time, re-execution after commits with coalescing,
// strictly increasing delivered revisions, identical error/close behavior.
// The impact-region wake filter (watcher/watchSet, shared with the
// single-node implementation in watch.go) originated here: commits only
// wake the watchers whose answer's impact region (the widened region proven
// sufficient for cache invalidation) the change box intersects. A watcher
// whose region a mutation misses provably keeps its exact answer, so the
// skipped wake-up is unobservable except as fewer redundant deliveries.

// WatchStats returns the wake-filter counters for the router's watchers.
func (s *ShardedDB) WatchStats() WatchStats { return s.watch.stats() }

// Watch subscribes req to the router's revision chain, with the same
// contract as DB.Watch: same validation, same delivery and error semantics,
// same coalescing. Delivered answers are bit-identical to the single-node
// watch's answers at the same revisions; only redundant deliveries (updates
// whose mutation provably could not change the answer) may be skipped.
func (s *ShardedDB) Watch(ctx context.Context, req Request, opts ...QueryOption) (<-chan Update, error) {
	if req == nil {
		return nil, ErrNilRequest
	}
	if ctx == nil {
		ctx = context.Background()
	}
	var xo execOptions
	for _, o := range opts {
		o(&xo)
	}
	if xo.pinned() {
		return nil, ErrPinnedWatch
	}
	if err := req.validate(); err != nil {
		return nil, err
	}
	out := make(chan Update)
	w := s.watch.add()
	go s.watchLoop(ctx, req, &xo, out, w)
	return out, nil
}

// watchLoop is the sharded per-subscription goroutine, mirroring
// DB.watchLoop with the router cut in place of the MVCC version.
func (s *ShardedDB) watchLoop(ctx context.Context, req Request, xo *execOptions, out chan<- Update, w *watcher) {
	defer close(out)
	defer s.watch.remove(w)
	var prev *Answer
	var prevRev uint64
	for {
		cut := s.liveCut()
		if prev == nil || cut.rev > prevRev {
			ans, region, err := s.execRouted(ctx, req, xo, cut)
			if err != nil {
				if ctx.Err() != nil {
					return // cancelled mid-execution: close without an errored update
				}
				select {
				case out <- Update{Epoch: cut.rev, Err: err}:
				case <-ctx.Done():
				}
				return
			}
			// Stamp deliveries with the answer's own revision, not the cut's:
			// a live single-shard execution slides forward when a commit on
			// the target shard overtakes the cut (see spanWorld), and the
			// delivered epoch must match the data it reflects.
			select {
			case out <- Update{Epoch: ans.Epoch(), Answer: ans, Delta: answerDelta(prev, ans)}:
			case <-ctx.Done():
				return
			}
			prev = ans
			prevRev = ans.Epoch()
			w.setRegion(region)
			// Close the missed-wake race: while this re-execution ran,
			// notify filtered commits against the *previous* answer's region,
			// so a mutation intersecting only the new region queued no wake.
			// The new region is installed now; re-check the revision directly
			// instead of trusting the wake channel, and go around again if
			// anything committed meanwhile. Commits landing after this check
			// are filtered against the region just installed, so their wakes
			// (the channel holds one token) cannot be lost.
			if s.liveCut().rev > prevRev {
				continue
			}
		}
		select {
		case <-w.wake:
		case <-ctx.Done():
			return
		}
	}
}
