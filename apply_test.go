package connquery

// Batch-vs-sequential differential harness for DB.Apply: a batched instance
// and a reference instance driven by the identical mutation stream — the
// reference one member at a time through the public ops — must report the
// same per-member outcomes, sit at the same epoch after every tick, and
// answer every request kind bit-identically. Directed tests pin the
// pathological orders (insert → delete → reinsert of the same object in one
// tick, moves whose insert half fails) and the durable tier proves batched
// WAL groups recover to the twin's exact state, including under torn tails.

import (
	"context"
	"fmt"
	"sort"
	"testing"
	"time"
)

// sequentialApply drives one batch through the public one-by-one mutation
// ops — the behavior DB.Apply must reproduce. It mirrors ShardedDB.Apply's
// member loop so the single-node batched path is differentially pinned
// against the same sequential semantics the sharded tier uses.
func sequentialApply(db Database, batch []Mutation) ApplyResult {
	results := make([]MutationResult, len(batch))
	applied := 0
	for i, m := range batch {
		switch m.Op {
		case MutInsertPoint:
			if err := validSpeed(m.Speed); err != nil {
				results[i] = MutationResult{Err: err}
				continue
			}
			pid, err := db.InsertPoint(m.P)
			if err != nil {
				results[i] = MutationResult{Err: err}
				continue
			}
			applied++
			results[i] = MutationResult{ID: pid}
		case MutDeletePoint:
			if !db.DeletePoint(m.ID) {
				results[i] = MutationResult{ID: m.ID, Err: fmt.Errorf("no live point %d", m.ID)}
				continue
			}
			applied++
			results[i] = MutationResult{ID: m.ID, Deleted: true}
		case MutInsertObstacle:
			oid, err := db.InsertObstacle(m.R)
			if err != nil {
				results[i] = MutationResult{Err: err}
				continue
			}
			applied++
			results[i] = MutationResult{ID: oid}
		case MutDeleteObstacle:
			if !db.DeleteObstacle(m.ID) {
				results[i] = MutationResult{ID: m.ID, Err: fmt.Errorf("no live obstacle %d", m.ID)}
				continue
			}
			applied++
			results[i] = MutationResult{ID: m.ID, Deleted: true}
		case MutMovePoint:
			if err := validSpeed(m.Speed); err != nil {
				results[i] = MutationResult{ID: m.ID, Err: err}
				continue
			}
			if !db.DeletePoint(m.ID) {
				results[i] = MutationResult{ID: m.ID, Err: fmt.Errorf("no live point %d", m.ID)}
				continue
			}
			applied++
			pid, err := db.InsertPoint(m.P)
			if err != nil {
				results[i] = MutationResult{ID: m.ID, Deleted: true, Err: err}
				continue
			}
			applied++
			results[i] = MutationResult{ID: pid, Deleted: true}
		default:
			results[i] = MutationResult{Err: fmt.Errorf("unknown mutation %s", m.Op)}
		}
	}
	return ApplyResult{Epoch: db.Version(), Applied: applied, Results: results}
}

// checkApplyOutcomes requires two ApplyResults to agree member by member:
// same assigned IDs, same delete outcomes, same failure pattern, same
// applied count, same resulting epoch.
func checkApplyOutcomes(t *testing.T, tick int, batch []Mutation, got, want ApplyResult) {
	t.Helper()
	if got.Epoch != want.Epoch {
		t.Fatalf("tick %d: batched epoch %d, sequential %d", tick, got.Epoch, want.Epoch)
	}
	if got.Applied != want.Applied {
		t.Fatalf("tick %d: batched applied %d, sequential %d", tick, got.Applied, want.Applied)
	}
	if len(got.Results) != len(batch) || len(want.Results) != len(batch) {
		t.Fatalf("tick %d: result lengths %d/%d for %d members", tick, len(got.Results), len(want.Results), len(batch))
	}
	for i := range batch {
		g, w := got.Results[i], want.Results[i]
		if g.ID != w.ID || g.Deleted != w.Deleted || (g.Err == nil) != (w.Err == nil) {
			t.Fatalf("tick %d member %d (%s): batched {id %d deleted %v err %v}, sequential {id %d deleted %v err %v}",
				tick, i, batch[i].Op, g.ID, g.Deleted, g.Err, w.ID, w.Deleted, w.Err)
		}
	}
}

// applyGen composes randomized batches against its own books of the live
// world, predicting in-batch ID assignment so one tick can chain operations
// on objects it creates itself. Books are re-synced from the actual results
// after every tick.
type applyGen struct {
	ptPos    map[int32]Point
	obsRects map[int32]Rect
	nextPID  int32
	nextOID  int32
}

func newApplyGen(points []Point, obstacles []Rect) *applyGen {
	g := &applyGen{
		ptPos:    make(map[int32]Point, len(points)),
		obsRects: make(map[int32]Rect, len(obstacles)),
		nextPID:  int32(len(points)),
		nextOID:  int32(len(obstacles)),
	}
	for i, p := range points {
		g.ptPos[int32(i)] = p
	}
	for i, r := range obstacles {
		g.obsRects[int32(i)] = r
	}
	return g
}

func sortedPtIDs(m map[int32]Point) []int32 {
	ids := make([]int32, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func sortedObsIDs(m map[int32]Rect) []int32 {
	ids := make([]int32, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// safePt draws a point that no obstacle in obs strictly contains, so its
// insertion is guaranteed to validate.
func safePt(w *diffWorkload, obs map[int32]Rect) Point {
	for i := 0; i < 100; i++ {
		p := w.pt()
		blocked := false
		for _, r := range obs {
			if r.ContainsOpen(p) {
				blocked = true
				break
			}
		}
		if !blocked {
			return p
		}
	}
	return Pt(0, 0) // the corner of an obstacle-free world draw; boundary points always validate
}

// safeObs draws an obstacle that swallows none of the live points, so its
// insertion is guaranteed to validate; ok is false when the draw keeps
// colliding.
func safeObs(w *diffWorkload, pts map[int32]Point) (Rect, bool) {
	for i := 0; i < 30; i++ {
		lo := w.pt()
		r := R(lo.X, lo.Y, lo.X+0.5+w.rng.Float64()*6, lo.Y+0.5+w.rng.Float64()*6)
		swallow := false
		for _, p := range pts {
			if r.ContainsOpen(p) {
				swallow = true
				break
			}
		}
		if !swallow {
			return r, true
		}
	}
	return Rect{}, false
}

// compose builds one randomized batch, mixing the five operations with
// deliberate failure members, same-tick insert→delete→reinsert chains, and
// moves whose insert half fails inside an obstacle.
func (g *applyGen) compose(w *diffWorkload) []Mutation {
	simPts := make(map[int32]Point, len(g.ptPos))
	for id, p := range g.ptPos {
		simPts[id] = p
	}
	simObs := make(map[int32]Rect, len(g.obsRects))
	for id, r := range g.obsRects {
		simObs[id] = r
	}
	nextPID, nextOID := g.nextPID, g.nextOID
	n := 1 + w.rng.Intn(6)
	var ms []Mutation
	for attempts := 0; len(ms) < n && attempts < 200; attempts++ {
		switch w.rng.Intn(12) {
		case 0, 1, 2: // insert, sometimes speed-declared
			p := safePt(w, simObs)
			var sp float64
			if w.rng.Intn(3) == 0 {
				sp = 0.5 + w.rng.Float64()*4
			}
			ms = append(ms, Mutation{Op: MutInsertPoint, P: p, Speed: sp})
			simPts[nextPID] = p
			nextPID++
		case 3, 4: // delete a live point
			if ids := sortedPtIDs(simPts); len(ids) > 4 {
				pid := ids[w.rng.Intn(len(ids))]
				ms = append(ms, Mutation{Op: MutDeletePoint, ID: pid})
				delete(simPts, pid)
			}
		case 5: // insert an obstacle
			if r, ok := safeObs(w, simPts); ok {
				ms = append(ms, Mutation{Op: MutInsertObstacle, R: r})
				simObs[nextOID] = r
				nextOID++
			}
		case 6: // delete a live obstacle
			if ids := sortedObsIDs(simObs); len(ids) > 0 {
				oid := ids[w.rng.Intn(len(ids))]
				ms = append(ms, Mutation{Op: MutDeleteObstacle, ID: oid})
				delete(simObs, oid)
			}
		case 7, 8: // move a live point, sometimes speed-declared
			if ids := sortedPtIDs(simPts); len(ids) > 0 {
				pid := ids[w.rng.Intn(len(ids))]
				p := safePt(w, simObs)
				var sp float64
				if w.rng.Intn(3) == 0 {
					sp = 0.5 + w.rng.Float64()*4
				}
				ms = append(ms, Mutation{Op: MutMovePoint, ID: pid, P: p, Speed: sp})
				delete(simPts, pid)
				simPts[nextPID] = p
				nextPID++
			}
		case 9: // deliberate failures: dead targets, invalid speeds
			switch w.rng.Intn(4) {
			case 0:
				ms = append(ms, Mutation{Op: MutDeletePoint, ID: nextPID + 500})
			case 1:
				ms = append(ms, Mutation{Op: MutInsertPoint, P: w.pt(), Speed: -1})
			case 2:
				ms = append(ms, Mutation{Op: MutMovePoint, ID: nextPID + 500, P: w.pt()})
			default:
				ms = append(ms, Mutation{Op: MutDeleteObstacle, ID: g.nextOID + 500})
			}
		case 10: // move into an obstacle interior: the delete stands
			ptIDs, obIDs := sortedPtIDs(simPts), sortedObsIDs(simObs)
			if len(ptIDs) > 4 && len(obIDs) > 0 {
				pid := ptIDs[w.rng.Intn(len(ptIDs))]
				r := simObs[obIDs[w.rng.Intn(len(obIDs))]]
				ms = append(ms, Mutation{Op: MutMovePoint, ID: pid, P: Pt((r.MinX+r.MaxX)/2, (r.MinY+r.MaxY)/2)})
				delete(simPts, pid)
			}
		default: // insert → delete → reinsert of the same object in one tick
			if n-len(ms) >= 3 {
				p := safePt(w, simObs)
				ms = append(ms,
					Mutation{Op: MutInsertPoint, P: p},
					Mutation{Op: MutDeletePoint, ID: nextPID},
					Mutation{Op: MutInsertPoint, P: p},
				)
				simPts[nextPID+1] = p
				nextPID += 2
			}
		}
	}
	return ms
}

// updateBooks re-syncs the generator's books from one tick's actual
// outcomes.
func (g *applyGen) updateBooks(batch []Mutation, res ApplyResult) {
	for i, m := range batch {
		r := res.Results[i]
		switch m.Op {
		case MutInsertPoint:
			if r.Err == nil {
				g.ptPos[r.ID] = m.P
				g.nextPID = r.ID + 1
			}
		case MutDeletePoint:
			if r.Err == nil {
				delete(g.ptPos, m.ID)
			}
		case MutInsertObstacle:
			if r.Err == nil {
				g.obsRects[r.ID] = m.R
				g.nextOID = r.ID + 1
			}
		case MutDeleteObstacle:
			if r.Err == nil {
				delete(g.obsRects, m.ID)
			}
		case MutMovePoint:
			if r.Deleted {
				delete(g.ptPos, m.ID)
			}
			if r.Err == nil && r.Deleted {
				g.ptPos[r.ID] = m.P
				g.nextPID = r.ID + 1
			}
		}
	}
}

// recordBatch appends one tick's committed primitives in WAL order —
// inserts and deletes in member order, a move as its delete then its insert
// — for prefix replay in the torn-tail differential.
func recordBatch(muts []recMut, batch []Mutation, res ApplyResult) []recMut {
	for i, m := range batch {
		r := res.Results[i]
		switch m.Op {
		case MutInsertPoint:
			if r.Err == nil {
				muts = append(muts, recMut{op: recInsPt, p: m.P, id: r.ID})
			}
		case MutDeletePoint:
			if r.Err == nil {
				muts = append(muts, recMut{op: recDelPt, id: m.ID})
			}
		case MutInsertObstacle:
			if r.Err == nil {
				muts = append(muts, recMut{op: recInsObs, r: m.R, id: r.ID})
			}
		case MutDeleteObstacle:
			if r.Err == nil {
				muts = append(muts, recMut{op: recDelObs, id: m.ID})
			}
		case MutMovePoint:
			if r.Deleted {
				muts = append(muts, recMut{op: recDelPt, id: m.ID})
			}
			if r.Err == nil && r.Deleted {
				muts = append(muts, recMut{op: recInsPt, p: m.P, id: r.ID})
			}
		}
	}
	return muts
}

// runApplyDifferential is the single-node batched-vs-sequential driver.
func runApplyDifferential(t *testing.T, seed int64, opts ...Option) {
	t.Helper()
	w, pts, obs := durableWorld(seed)
	o := append([]Option{WithAnswerCache(8 << 20)}, opts...)
	dut, err := Open(pts, obs, o...)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Open(pts, obs, o...)
	if err != nil {
		t.Fatal(err)
	}
	g := newApplyGen(pts, obs)
	ctx := context.Background()
	for tick := 0; tick < 150; tick++ {
		batch := g.compose(w)
		got, err := dut.Apply(batch)
		if err != nil {
			t.Fatalf("tick %d: Apply: %v", tick, err)
		}
		want := sequentialApply(ref, batch)
		checkApplyOutcomes(t, tick, batch, got, want)
		if v1, v2 := dut.Version(), ref.Version(); v1 != v2 {
			t.Fatalf("tick %d: version skew %d vs %d", tick, v1, v2)
		}
		g.updateBooks(batch, got)
		if tick%3 == 0 {
			req := w.newRequest()
			a1, err1 := ref.Exec(ctx, req)
			a2, err2 := dut.Exec(ctx, req)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("tick %d %s: sequential err=%v, batched err=%v", tick, req.Kind(), err1, err2)
			}
			if err1 == nil {
				checkTwinAnswers(t, req, a2, a1)
			}
			if t.Failed() {
				t.FailNow()
			}
		}
	}
	compareBattery(t, dut, ref, seed+1000, 60)
}

// TestApplyBatchDifferential proves DB.Apply order-equivalent to the
// sequential public ops over randomized ticks: same IDs, same failures, same
// epochs, bit-identical answers on every request kind.
func TestApplyBatchDifferential(t *testing.T) { runApplyDifferential(t, 61) }

// TestApplyBatchDifferentialOneTree repeats the differential over the
// unified-tree layout, where the batch's single working clone serves both
// item kinds.
func TestApplyBatchDifferentialOneTree(t *testing.T) { runApplyDifferential(t, 62, WithOneTree()) }

// TestShardedApplyDifferential crosses both axes at once: the sharded
// router's Apply (sequential per member, wake-filtered per shard) against
// the single-node batched Apply must agree on every outcome and answer.
func TestShardedApplyDifferential(t *testing.T) {
	w, pts, obs := durableWorld(63)
	dut, err := OpenSharded(pts, obs, 4, WithAnswerCache(8<<20))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Open(pts, obs, WithAnswerCache(8<<20))
	if err != nil {
		t.Fatal(err)
	}
	g := newApplyGen(pts, obs)
	ctx := context.Background()
	for tick := 0; tick < 100; tick++ {
		batch := g.compose(w)
		got, err := dut.Apply(batch)
		if err != nil {
			t.Fatalf("tick %d: sharded Apply: %v", tick, err)
		}
		want, err := ref.Apply(batch)
		if err != nil {
			t.Fatalf("tick %d: batched Apply: %v", tick, err)
		}
		checkApplyOutcomes(t, tick, batch, got, want)
		g.updateBooks(batch, got)
		if tick%3 == 0 {
			req := w.newRequest()
			a1, err1 := ref.Exec(ctx, req)
			a2, err2 := dut.Exec(ctx, req)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("tick %d %s: single err=%v, sharded err=%v", tick, req.Kind(), err1, err2)
			}
			if err1 == nil {
				checkTwinAnswers(t, req, a2, a1)
			}
			if t.Failed() {
				t.FailNow()
			}
		}
	}
	compareBattery(t, dut, ref, 631, 60)
}

// TestApplySameObjectTick pins the pathological same-tick order: insert →
// delete → reinsert of one object in a single batch assigns sequential IDs,
// applies three primitives, and publishes one epoch three past the base.
func TestApplySameObjectTick(t *testing.T) {
	db, err := Open([]Point{Pt(10, 10), Pt(50, 50)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Apply([]Mutation{
		{Op: MutInsertPoint, P: Pt(30, 30)},
		{Op: MutDeletePoint, ID: 2},
		{Op: MutInsertPoint, P: Pt(30, 30)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 3 || res.Epoch != 4 {
		t.Fatalf("applied %d at epoch %d, want 3 at 4", res.Applied, res.Epoch)
	}
	wantRes := []MutationResult{{ID: 2}, {ID: 2, Deleted: true}, {ID: 3}}
	for i, want := range wantRes {
		got := res.Results[i]
		if got.ID != want.ID || got.Deleted != want.Deleted || got.Err != nil {
			t.Fatalf("member %d: got {id %d deleted %v err %v}, want {id %d deleted %v}", i, got.ID, got.Deleted, got.Err, want.ID, want.Deleted)
		}
	}
	if db.Version() != 4 || db.NumPoints() != 3 {
		t.Fatalf("version %d with %d points, want 4 with 3", db.Version(), db.NumPoints())
	}

	ref, err := Open([]Point{Pt(10, 10), Pt(50, 50)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.InsertPoint(Pt(30, 30)); err != nil {
		t.Fatal(err)
	}
	if !ref.DeletePoint(2) {
		t.Fatal("reference delete failed")
	}
	if _, err := ref.InsertPoint(Pt(30, 30)); err != nil {
		t.Fatal(err)
	}
	compareBattery(t, db, ref, 641, 30)
}

// TestApplyMovePartialFailure pins the half-applied move: an insert half
// failing inside an obstacle leaves the delete standing, exactly as the
// sequential DeletePoint + InsertPoint pair would have.
func TestApplyMovePartialFailure(t *testing.T) {
	db, err := Open([]Point{Pt(10, 10), Pt(20, 20)}, []Rect{R(40, 40, 60, 60)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Apply([]Mutation{{Op: MutMovePoint, ID: 0, P: Pt(50, 50)}})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Results[0]
	if r.ID != 0 || !r.Deleted || r.Err == nil {
		t.Fatalf("half-applied move reported {id %d deleted %v err %v}", r.ID, r.Deleted, r.Err)
	}
	if res.Applied != 1 || res.Epoch != 2 || db.NumPoints() != 1 {
		t.Fatalf("applied %d at epoch %d with %d points, want 1 at 2 with 1", res.Applied, res.Epoch, db.NumPoints())
	}

	ref, err := Open([]Point{Pt(10, 10), Pt(20, 20)}, []Rect{R(40, 40, 60, 60)})
	if err != nil {
		t.Fatal(err)
	}
	if !ref.DeletePoint(0) {
		t.Fatal("reference delete failed")
	}
	compareBattery(t, db, ref, 642, 20)

	// A move of a dead point fails whole: nothing applies, nothing publishes.
	v := db.Version()
	res, err = db.Apply([]Mutation{{Op: MutMovePoint, ID: 0, P: Pt(15, 15)}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 0 || res.Epoch != v || db.Version() != v {
		t.Fatalf("dead-target move applied %d, epoch %d -> %d", res.Applied, v, db.Version())
	}
	if r := res.Results[0]; r.Err == nil || r.Deleted {
		t.Fatalf("dead-target move reported {deleted %v err %v}", r.Deleted, r.Err)
	}

	// Zero-success and empty batches publish nothing.
	res, err = db.Apply([]Mutation{{Op: MutDeletePoint, ID: 99}, {Op: MutInsertPoint, P: Pt(1, 1), Speed: -3}})
	if err != nil || res.Applied != 0 || res.Epoch != v {
		t.Fatalf("zero-success batch: applied %d, epoch %d (err %v), want 0 at %d", res.Applied, res.Epoch, err, v)
	}
	res, err = db.Apply(nil)
	if err != nil || res.Applied != 0 || res.Epoch != v || len(res.Results) != 0 {
		t.Fatalf("empty batch: %+v (err %v)", res, err)
	}
	if db.Version() != v {
		t.Fatalf("no-op batches moved the version %d -> %d", v, db.Version())
	}
}

// TestDurableApplyCrashRecovery drives a strict-mode durable instance and
// its in-memory twin with identical batches, hard-stops the durable one, and
// requires recovery — replaying the batched WAL groups record by record — to
// land on the twin's exact state and keep twinning afterwards.
func TestDurableApplyCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	w, pts, obs := durableWorld(64)
	dur, err := OpenDurable(dir, WithBootstrapData(pts, obs), WithCheckpointEvery(9), WithAnswerCache(8<<20))
	if err != nil {
		t.Fatal(err)
	}
	mem, err := Open(pts, obs, WithAnswerCache(8<<20))
	if err != nil {
		t.Fatal(err)
	}
	g := newApplyGen(pts, obs)
	runTicks := func(dut Database, n int) {
		for tick := 0; tick < n; tick++ {
			batch := g.compose(w)
			got, err := dut.Apply(batch)
			if err != nil {
				t.Fatalf("durable Apply: %v", err)
			}
			want, err := mem.Apply(batch)
			if err != nil {
				t.Fatalf("twin Apply: %v", err)
			}
			checkApplyOutcomes(t, tick, batch, got, want)
			g.updateBooks(batch, got)
		}
	}
	runTicks(dur, 60)

	// Hard stop: abandon the handle without Close.
	re, err := OpenDurable(dir, WithCheckpointEvery(9), WithAnswerCache(8<<20))
	if err != nil {
		t.Fatal(err)
	}
	rs := re.RecoveryStats()
	if rs.Epoch != mem.Version() {
		t.Fatalf("recovered to epoch %d, twin is at %d", rs.Epoch, mem.Version())
	}
	t.Logf("recovery stats after batched ticks: %+v", rs)
	compareBattery(t, re, mem, 651, 50)

	runTicks(re, 20)
	compareBattery(t, re, mem, 652, 30)
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableApplySyncAck pins the relaxed-durability contract: under group
// commit with an effectively infinite window, WithSyncAck makes every Apply
// return only after its WAL group is fsynced (the log is clean the moment
// the ack lands), the same workload without the option leaves the log dirty,
// and tearing the unsynced tail off the relaxed log recovers exactly the
// sequential prefix the surviving records encode.
func TestDurableApplySyncAck(t *testing.T) {
	w, pts, obs := durableWorld(65)

	// Acked handle: every Apply synced before returning.
	ackDir := t.TempDir()
	acked, err := OpenDurable(ackDir, WithBootstrapData(pts, obs),
		WithGroupCommit(time.Hour), WithSyncAck(), WithCheckpointEvery(-1), WithAnswerCache(8<<20))
	if err != nil {
		t.Fatal(err)
	}
	mem, err := Open(pts, obs, WithAnswerCache(8<<20))
	if err != nil {
		t.Fatal(err)
	}
	g := newApplyGen(pts, obs)
	var muts []recMut
	var batches [][]Mutation
	for tick := 0; tick < 30; tick++ {
		batch := g.compose(w)
		batches = append(batches, batch)
		got, err := acked.Apply(batch)
		if err != nil {
			t.Fatal(err)
		}
		want, err := mem.Apply(batch)
		if err != nil {
			t.Fatal(err)
		}
		checkApplyOutcomes(t, tick, batch, got, want)
		if got.Applied > 0 && acked.dur.w.Dirty() {
			t.Fatalf("tick %d: Apply acked with the log still dirty under WithSyncAck", tick)
		}
		g.updateBooks(batch, got)
		muts = recordBatch(muts, batch, got)
	}

	// Hard stop: the hour-long window never fired, so only the per-ack
	// fsyncs carried the data — and they carried all of it.
	re, err := OpenDurable(ackDir, WithAnswerCache(8<<20))
	if err != nil {
		t.Fatal(err)
	}
	if re.Version() != mem.Version() {
		t.Fatalf("acked recovery at epoch %d, twin at %d", re.Version(), mem.Version())
	}
	compareBattery(t, re, mem, 661, 40)
	re.Close()

	// Contrast handle: same batches, no sync-ack — the log stays dirty
	// within the window, the documented relaxed window.
	relDir := t.TempDir()
	relaxed, err := OpenDurable(relDir, WithBootstrapData(pts, obs),
		WithGroupCommit(time.Hour), WithCheckpointEvery(-1), WithAnswerCache(8<<20))
	if err != nil {
		t.Fatal(err)
	}
	dirtySeen := false
	for tick, batch := range batches {
		got, err := relaxed.Apply(batch)
		if err != nil {
			t.Fatal(err)
		}
		if got.Applied > 0 && relaxed.dur.w.Dirty() {
			dirtySeen = true
		}
		_ = tick
	}
	if !dirtySeen {
		t.Fatal("relaxed group commit never left the log dirty — the sync-ack contrast is vacuous")
	}
	if relaxed.Version() != mem.Version() {
		t.Fatalf("relaxed handle at epoch %d, twin at %d", relaxed.Version(), mem.Version())
	}

	// Tear the unsynced tail: recovery must land on the exact primitive
	// prefix the surviving log encodes, proven against an in-memory replay.
	chopNewestSegment(t, relDir, 75)
	re2, err := OpenDurable(relDir, WithAnswerCache(8<<20))
	if err != nil {
		t.Fatal(err)
	}
	e := re2.Version()
	if e >= mem.Version() || e < 1 {
		t.Fatalf("torn recovery at epoch %d, twin at %d", e, mem.Version())
	}
	ref := replayPrefix(t, pts, obs, muts, int(e)-1)
	compareBattery(t, re2, ref, 662, 40)
	t.Logf("torn batched recovery: %+v (twin at %d)", re2.RecoveryStats(), mem.Version())
	re2.Close()
}
