//go:build !race

package connquery

// raceEnabled is false in a regular test binary; see race_on_test.go.
const raceEnabled = false
