// Package connquery is a spatial query library for continuous obstructed
// nearest neighbor (CONN) search, reproducing Gao & Zheng, "Continuous
// Obstructed Nearest Neighbor Queries in Spatial Databases" (SIGMOD 2009).
//
// Given a set of data points P, a set of rectangular obstacles O, and a
// query line segment q, a CONN query reports, for every position along q,
// which data point is nearest by obstructed distance — the length of the
// shortest path that does not cross any obstacle's interior — together with
// the exact split positions where the answer changes. COkNN generalizes the
// answer to the k nearest points per position.
//
// Basic usage:
//
//	db, err := connquery.Open(points, obstacles)
//	if err != nil { ... }
//	res, metrics, err := db.CONN(connquery.Seg(start, end))
//	if err != nil { ... }
//	for _, tup := range res.Tuples {
//	    fmt.Println(tup.P, "owns", res.Q.SubSegment(tup.Span.Lo, tup.Span.Hi))
//	}
//	fmt.Println("cost:", metrics.TotalCost())
//
// The library indexes P and O with R*-trees (two separate trees by default,
// or a single unified tree with WithOneTree), models page I/O with a
// configurable page size and optional LRU buffer, and reports the paper's
// cost metrics (page faults, CPU time, points/obstacles evaluated,
// visibility-graph size) with every query.
//
// The database is mutable with snapshot isolation: insertions and deletions
// publish immutable copy-on-write MVCC versions, so queries (and clones)
// always read one consistent snapshot while a single writer advances the
// version chain — see the DB type's concurrency contract.
package connquery

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"connquery/internal/core"
	"connquery/internal/geom"
	"connquery/internal/lru"
	"connquery/internal/rtree"
	"connquery/internal/stats"
)

// Re-exported geometry types. PIDs in results index the point slice given
// to Open.
type (
	// Point is a 2D location.
	Point = geom.Point
	// Rect is a closed axis-aligned rectangle (the obstacle shape).
	Rect = geom.Rect
	// Segment is a query line segment.
	Segment = geom.Segment
	// Span is a parametric interval [Lo, Hi] ⊆ [0, 1] along a query segment.
	Span = geom.Span
)

// Result types re-exported from the query core.
type (
	// Result is a CONN answer.
	Result = core.Result
	// Tuple is one ⟨point, interval⟩ element of a CONN answer.
	Tuple = core.Tuple
	// KResult is a COkNN answer.
	KResult = core.KResult
	// KTuple is one ⟨point set, interval⟩ element of a COkNN answer.
	KTuple = core.KTuple
	// Neighbor is one answer of a point ONN query.
	Neighbor = core.Neighbor
	// Metrics reports one query's cost profile.
	Metrics = stats.QueryMetrics
)

// NoOwner marks intervals with no reachable data point.
const NoOwner = core.NoOwner

// Pt builds a Point.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// R builds a Rect from min/max coordinates.
func R(minX, minY, maxX, maxY float64) Rect { return geom.R(minX, minY, maxX, maxY) }

// Seg builds a Segment.
func Seg(a, b Point) Segment { return geom.Seg(a, b) }

// version is one immutable MVCC snapshot of the database: point and
// obstacle storage, the tombstone sets, and an engine over this version's
// R-tree roots. Once published through DB.cur a version is never modified;
// mutations build a successor (sharing all untouched structure) and swap the
// pointer. Every query loads the pointer exactly once, so it observes one
// consistent version end to end.
type version struct {
	epoch      uint64
	points     []Point // PID-indexed; append-only along a version chain
	obstacles  []Rect  // OID-indexed; append-only along a version chain
	deletedPts map[int32]bool
	deletedObs map[int32]bool
	eng        *core.Engine
}

// DB answers CONN-family queries over a point set and an obstacle set and
// supports mutations with snapshot isolation (multi-version concurrency
// control).
//
// Concurrency contract:
//
//   - Mutations (InsertPoint, DeletePoint, InsertObstacle, DeleteObstacle)
//     serialize on an internal lock and may run concurrently with any
//     queries on this DB or its clones: each mutation publishes a new
//     immutable version via an atomic pointer swap, and every query reads
//     the version that was current when it started.
//   - Queries on one DB handle may run concurrently with each other and
//     with the writer when no LRU buffer is configured (the default). The
//     page-fault counters are shared per handle, so concurrent queries
//     contaminate each other's per-query fault metrics (answers are
//     unaffected); use one Clone per goroutine for clean metrics. With
//     WithBufferPages the LRU buffer is unsynchronized shared state: give
//     each querying goroutine its own Clone.
//   - Clone pins the version current at call time: later mutations of the
//     parent are invisible to the clone, and the clone may itself be
//     mutated, forking an independent history.
type DB struct {
	cur atomic.Pointer[version]

	// Writer state. mu serializes mutations on this handle; readers never
	// take it. ownPts/ownObs record whether this handle exclusively owns the
	// spare capacity of the latest version's storage slices (false on
	// clones, which share the parent's arrays until their first append).
	mu     sync.Mutex
	ownPts bool
	ownObs bool

	states  *core.StatePool
	dataBuf *lru.Buffer
	obstBuf *lru.Buffer
	cfg     config
}

// current returns the snapshot a query should run against.
func (db *DB) current() *version { return db.cur.Load() }

// Open builds a DB over the given points and obstacles. Points may lie on
// obstacle boundaries but not strictly inside; violations are reported as an
// error. Obstacle rectangles must be well-formed with strictly positive
// width and height (degenerate rectangles have no blocking interior and
// their coincident edges break occlusion assumptions; InsertObstacle
// enforces the same rule).
func Open(points []Point, obstacles []Rect, opts ...Option) (*DB, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if len(points) == 0 {
		return nil, errors.New("connquery: no data points")
	}
	for i, p := range points {
		if !validPoint(p) {
			return nil, fmt.Errorf("connquery: point %d has a non-finite coordinate: %v", i, p)
		}
	}
	for i, o := range obstacles {
		if !validRect(o) {
			return nil, fmt.Errorf("connquery: obstacle %d is malformed: %v (must be finite with positive width and height)", i, o)
		}
	}
	db := &DB{
		cfg:    cfg,
		states: core.NewStatePool(),
		ownPts: true,
		ownObs: true,
	}
	v := &version{
		epoch:     1,
		points:    append([]Point(nil), points...),
		obstacles: append([]Rect(nil), obstacles...),
	}

	pointItems := make([]rtree.Item, len(points))
	for i, p := range points {
		pointItems[i] = rtree.PointItem(int32(i), p)
	}
	obstItems := make([]rtree.Item, len(obstacles))
	for i, o := range obstacles {
		obstItems[i] = rtree.ObstacleItem(int32(i), o)
	}

	eng := &core.Engine{Obstacles: v.obstacles, Opts: cfg.tuning, Epoch: v.epoch, States: db.states}
	if cfg.oneTree {
		uni := rtree.New(rtree.Options{PageSize: cfg.pageSize})
		uni.BulkLoad(append(pointItems, obstItems...))
		counter := &stats.PageCounter{}
		if cfg.bufferPages > 0 {
			db.dataBuf = lru.New(cfg.bufferPages)
			counter.Buffer = db.dataBuf
		}
		uni.SetAccessRecorder(counter)
		eng.Unified = uni
		eng.DataCounter = counter
	} else {
		data := rtree.New(rtree.Options{PageSize: cfg.pageSize})
		data.BulkLoad(pointItems)
		obst := rtree.New(rtree.Options{PageSize: cfg.pageSize})
		obst.BulkLoad(obstItems)
		dc, oc := &stats.PageCounter{}, &stats.PageCounter{}
		if cfg.bufferPages > 0 {
			db.dataBuf = lru.New(cfg.bufferPages)
			db.obstBuf = lru.New(cfg.bufferPages)
			dc.Buffer = db.dataBuf
			oc.Buffer = db.obstBuf
		}
		data.SetAccessRecorder(dc)
		obst.SetAccessRecorder(oc)
		eng.Data, eng.Obst = data, obst
		eng.DataCounter, eng.ObstCounter = dc, oc
	}
	v.eng = eng

	// Validate point placement using the freshly built obstacle index.
	for i, p := range points {
		for _, o := range v.obstaclesNear(p) {
			if o.ContainsOpen(p) {
				return nil, fmt.Errorf("connquery: point %d (%v) lies strictly inside obstacle %v", i, p, o)
			}
		}
	}
	db.cur.Store(v)
	return db, nil
}

// obstaclesNear returns the obstacles whose rectangles contain (or touch) p.
// The lookup runs through an unrecorded view so validation reads never
// perturb I/O accounting or the (unsynchronized) LRU buffer.
func (v *version) obstaclesNear(p Point) []Rect {
	var out []Rect
	w := geom.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}
	v.obstTree().View(nil).Search(w, func(it rtree.Item) bool {
		if it.Kind == rtree.KindObstacle {
			out = append(out, v.obstacles[it.ID])
		}
		return true
	})
	return out
}

// obstTree returns the tree holding obstacle items.
func (v *version) obstTree() *rtree.Tree {
	if v.eng.OneTree() {
		return v.eng.Unified
	}
	return v.eng.Obst
}

// pointTree returns the tree holding point items.
func (v *version) pointTree() *rtree.Tree {
	if v.eng.OneTree() {
		return v.eng.Unified
	}
	return v.eng.Data
}

// NumPoints returns the size of the data set P (excluding deleted points).
func (db *DB) NumPoints() int {
	v := db.current()
	return len(v.points) - len(v.deletedPts)
}

// NumObstacles returns the size of the obstacle set O (excluding deleted
// obstacles).
func (db *DB) NumObstacles() int {
	v := db.current()
	return len(v.obstacles) - len(v.deletedObs)
}

// Version returns the database's snapshot epoch. It starts at 1 and
// increases by one with every successful mutation; clones report the epoch
// of the version they pinned.
func (db *DB) Version() uint64 { return db.current().epoch }

// PointByID returns the data point with the given result PID.
func (db *DB) PointByID(pid int32) (Point, bool) {
	v := db.current()
	if pid < 0 || int(pid) >= len(v.points) || v.deletedPts[pid] {
		return Point{}, false
	}
	return v.points[pid], true
}

// Points returns the live (non-deleted) data points of the current snapshot.
// The slice is freshly allocated and compact: its indexes are NOT PIDs when
// points have been deleted.
func (db *DB) Points() []Point {
	v := db.current()
	out := make([]Point, 0, len(v.points)-len(v.deletedPts))
	for pid, p := range v.points {
		if !v.deletedPts[int32(pid)] {
			out = append(out, p)
		}
	}
	return out
}

// Obstacles returns the live (non-deleted) obstacles of the current
// snapshot. The slice is freshly allocated and compact.
func (db *DB) Obstacles() []Rect {
	v := db.current()
	out := make([]Rect, 0, len(v.obstacles)-len(v.deletedObs))
	for oid, o := range v.obstacles {
		if !v.deletedObs[int32(oid)] {
			out = append(out, o)
		}
	}
	return out
}

// viewEngine builds a read engine over v's indexes with fresh page-fault
// counters and optional fresh LRU buffers. states may be nil, giving the
// engine a private query-state pool.
func viewEngine(v *version, cfg config, states *core.StatePool) (eng *core.Engine, dataBuf, obstBuf *lru.Buffer) {
	eng = &core.Engine{Obstacles: v.obstacles, Opts: cfg.tuning, Epoch: v.epoch, States: states}
	if v.eng.OneTree() {
		c := &stats.PageCounter{}
		if cfg.bufferPages > 0 {
			dataBuf = lru.New(cfg.bufferPages)
			c.Buffer = dataBuf
		}
		eng.Unified = v.eng.Unified.View(c)
		eng.DataCounter = c
		return eng, dataBuf, nil
	}
	dc, oc := &stats.PageCounter{}, &stats.PageCounter{}
	if cfg.bufferPages > 0 {
		dataBuf = lru.New(cfg.bufferPages)
		obstBuf = lru.New(cfg.bufferPages)
		dc.Buffer = dataBuf
		oc.Buffer = obstBuf
	}
	eng.Data = v.eng.Data.View(dc)
	eng.Obst = v.eng.Obst.View(oc)
	eng.DataCounter, eng.ObstCounter = dc, oc
	return eng, dataBuf, obstBuf
}

// Clone returns an independent query handle pinned to the current snapshot:
// R-tree nodes, point/obstacle storage and tombstones are shared with this
// version, while page-fault counters and the optional LRU buffer are fresh
// per clone. Later mutations of the parent are invisible to the clone (and
// vice versa: a mutated clone forks its own version chain), so a clone is a
// stable, fully consistent view. Use one clone per goroutine when you need
// uncontaminated per-query metrics or a buffered configuration.
func (db *DB) Clone() *DB {
	v := db.current()
	cp := &DB{cfg: db.cfg, states: core.NewStatePool()}
	eng, dataBuf, obstBuf := viewEngine(v, db.cfg, cp.states)
	cp.dataBuf, cp.obstBuf = dataBuf, obstBuf
	cp.cur.Store(&version{
		epoch:      v.epoch,
		points:     v.points,
		obstacles:  v.obstacles,
		deletedPts: v.deletedPts,
		deletedObs: v.deletedObs,
		eng:        eng,
	})
	return cp
}

// ResetBufferStats zeroes the LRU hit/miss counters while keeping resident
// pages, the boundary between the paper's warm-up and measurement phases.
func (db *DB) ResetBufferStats() {
	if db.dataBuf != nil {
		db.dataBuf.ResetStats()
	}
	if db.obstBuf != nil {
		db.obstBuf.ResetStats()
	}
}

// validateQuery rejects unusable query segments.
func (db *DB) validateQuery(q Segment) error {
	if q.Degenerate() {
		return errors.New("connquery: query segment is degenerate (use ONN for point queries)")
	}
	return nil
}

// CONN answers a continuous obstructed nearest neighbor query over q: the
// returned tuples partition q and each names the data point that is the
// obstructed NN of every position in its interval.
func (db *DB) CONN(q Segment) (*Result, Metrics, error) {
	if err := db.validateQuery(q); err != nil {
		return nil, Metrics{}, err
	}
	res, m := db.current().eng.CONN(q)
	return res, m, nil
}

// CONNBatch answers a slice of CONN queries concurrently on a bounded
// worker pool and returns results and metrics in input order. The snapshot
// current when the call starts is pinned for the whole batch, so every
// worker answers from the same version even while mutations continue. Each
// worker queries through its own engine view — indexes are shared,
// page-fault counters and the optional LRU buffer are per worker, and
// per-query scratch (the local visibility graph, Dijkstra state, caches) is
// reused across all the queries a worker processes. workers <= 0 selects
// GOMAXPROCS. All queries are validated before any work starts.
func (db *DB) CONNBatch(queries []Segment, workers int) ([]*Result, []Metrics, error) {
	for i, q := range queries {
		if err := db.validateQuery(q); err != nil {
			return nil, nil, fmt.Errorf("connquery: batch query %d: %w", i, err)
		}
	}
	v := db.current()
	results, metrics := core.RunCONNBatch(func() *core.Engine {
		eng, _, _ := viewEngine(v, db.cfg, nil)
		return eng
	}, queries, workers)
	return results, metrics, nil
}

// COKNN answers a continuous obstructed k-nearest-neighbor query (k >= 1).
func (db *DB) COKNN(q Segment, k int) (*KResult, Metrics, error) {
	if err := db.validateQuery(q); err != nil {
		return nil, Metrics{}, err
	}
	if k < 1 {
		return nil, Metrics{}, fmt.Errorf("connquery: k must be >= 1, got %d", k)
	}
	res, m := db.current().eng.COKNN(q, k)
	return res, m, nil
}

// ONN answers a snapshot obstructed k-nearest-neighbor query at a point.
func (db *DB) ONN(p Point, k int) ([]Neighbor, Metrics, error) {
	if k < 1 {
		return nil, Metrics{}, fmt.Errorf("connquery: k must be >= 1, got %d", k)
	}
	nbrs, m := db.current().eng.ONN(p, k)
	return nbrs, m, nil
}

// CNN answers a classical Euclidean continuous nearest neighbor query,
// ignoring obstacles — the baseline the paper contrasts in Figure 1.
func (db *DB) CNN(q Segment) (*Result, Metrics, error) {
	if err := db.validateQuery(q); err != nil {
		return nil, Metrics{}, err
	}
	res, m := db.current().eng.CNN(q)
	return res, m, nil
}

// NaiveCONN answers CONN by sampling: an ONN query at samples+1 evenly
// spaced positions. Approximate and slow by design; it is the baseline the
// paper's introduction rules out.
func (db *DB) NaiveCONN(q Segment, samples int) (*Result, Metrics, error) {
	if err := db.validateQuery(q); err != nil {
		return nil, Metrics{}, err
	}
	res, m := db.current().eng.NaiveCONN(q, samples)
	return res, m, nil
}

// JoinPair is one result of an obstructed join query.
type JoinPair = core.JoinPair

// EDistanceJoin returns every (query point, data point) pair whose
// obstructed distance is at most e (the obstructed e-distance join of
// Zhang et al., EDBT 2004).
func (db *DB) EDistanceJoin(queries []Point, e float64) ([]JoinPair, Metrics, error) {
	if e < 0 {
		return nil, Metrics{}, fmt.Errorf("connquery: negative join distance %v", e)
	}
	pairs, m := db.current().eng.EDistanceJoin(queries, e)
	return pairs, m, nil
}

// ClosestPair returns the (query point, data point) pair with the smallest
// obstructed distance. With no query points the returned pair has
// QIdx == -1 and infinite distance.
func (db *DB) ClosestPair(queries []Point) (JoinPair, Metrics) {
	pair, m := db.current().eng.ClosestPair(queries)
	return pair, m
}

// DistanceSemiJoin returns, for each query point, its obstructed nearest
// data point, sorted ascending by distance.
func (db *DB) DistanceSemiJoin(queries []Point) ([]JoinPair, Metrics) {
	pairs, m := db.current().eng.DistanceSemiJoin(queries)
	return pairs, m
}

// VisibleKNN returns the k nearest data points (Euclidean) among those
// visible from p — obstacles occlude rather than detour (the VkNN query of
// Nutanong et al., DASFAA 2007).
func (db *DB) VisibleKNN(p Point, k int) ([]Neighbor, Metrics, error) {
	if k < 1 {
		return nil, Metrics{}, fmt.Errorf("connquery: k must be >= 1, got %d", k)
	}
	nbrs, m := db.current().eng.VisibleKNN(p, k)
	return nbrs, m, nil
}

// TrajectoryResult is a per-leg CONN answer over a polyline trajectory.
type TrajectoryResult = core.TrajectoryResult

// TrajectoryCONN answers a CONN query over a polyline trajectory (the
// paper's §6 trajectory extension): the obstructed NN of every point on
// every leg. Degenerate legs are skipped.
func (db *DB) TrajectoryCONN(waypoints []Point) (*TrajectoryResult, Metrics, error) {
	if len(waypoints) < 2 {
		return nil, Metrics{}, errors.New("connquery: trajectory needs at least two waypoints")
	}
	res, m := db.current().eng.TrajectoryCONN(waypoints)
	if len(res.Legs) == 0 {
		return nil, Metrics{}, errors.New("connquery: all trajectory legs are degenerate")
	}
	return res, m, nil
}

// ObstructedRange returns every data point whose obstructed distance to
// center is at most radius, sorted ascending (the obstructed range query of
// Zhang et al., EDBT 2004).
func (db *DB) ObstructedRange(center Point, radius float64) ([]Neighbor, Metrics, error) {
	if radius < 0 {
		return nil, Metrics{}, fmt.Errorf("connquery: negative radius %v", radius)
	}
	nbrs, m := db.current().eng.ObstructedRange(center, radius)
	return nbrs, m, nil
}

// ObstructedDist returns the exact obstructed distance between two free
// points under the DB's obstacle set, +Inf when no path exists. It uses the
// same incremental obstacle retrieval as the queries, so only obstacles near
// the pair are examined.
func (db *DB) ObstructedDist(a, b Point) float64 {
	return db.current().eng.ObstructedDistance(a, b)
}
