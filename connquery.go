// Package connquery is a spatial query library for continuous obstructed
// nearest neighbor (CONN) search, reproducing Gao & Zheng, "Continuous
// Obstructed Nearest Neighbor Queries in Spatial Databases" (SIGMOD 2009).
//
// Given a set of data points P, a set of rectangular obstacles O, and a
// query line segment q, a CONN query reports, for every position along q,
// which data point is nearest by obstructed distance — the length of the
// shortest path that does not cross any obstacle's interior — together with
// the exact split positions where the answer changes. COkNN generalizes the
// answer to the k nearest points per position.
//
// # Requests and Exec
//
// Every query is a first-class request value executed through one path:
//
//	db, err := connquery.Open(points, obstacles)
//	if err != nil { ... }
//	res, metrics, err := connquery.Run(ctx, db, connquery.CONNRequest{Seg: connquery.Seg(start, end)})
//	if err != nil { ... }
//	for _, tup := range res.Tuples {
//	    fmt.Println(tup.P, "owns", res.Q.SubSegment(tup.Span.Lo, tup.Span.Hi))
//	}
//	fmt.Println("cost:", metrics.TotalCost())
//
// Run is the statically typed helper over DB.Exec, which returns an Answer
// carrying the payload, the query Metrics and the MVCC epoch it ran
// against. The request family covers the paper and its related work:
// CONNRequest, COkNNRequest, ONNRequest, CNNRequest, NaiveCONNRequest,
// RangeRequest, TrajectoryRequest, CONNBatchRequest, EDistanceJoinRequest,
// DistanceSemiJoinRequest, ClosestPairRequest, VisibleKNNRequest and
// DistanceRequest.
//
// Per-call QueryOptions subsume what used to require dedicated methods:
// AtVersion/AtSnapshot pin a query to an explicitly pinned MVCC version
// (DB.Snapshot returns the pin handle), WithQueryTuning overrides the
// ablation switches for one call, and WithWorkers runs a multi-item request
// on a bounded worker pool. The ctx passed to Exec is polled inside the
// query hot loops (the Dijkstra settle loop, incremental obstacle
// retrieval, the control-point scan), so cancellation and deadlines abort
// even a single stuck query promptly with ctx.Err().
//
// # Watching continuous queries under updates
//
// The database is mutable with snapshot isolation: mutations publish
// immutable copy-on-write MVCC versions while queries read one consistent
// snapshot end to end. DB.Watch subscribes a request to that version chain:
// every committed mutation re-executes the request against the freshly
// published version (coalescing bursts) and delivers the revised Answer
// with its epoch and the delta against the previous answer — the live
// variant of the paper's continuous queries.
//
// # Cost model
//
// The library indexes P and O with R*-trees (two separate trees by default,
// or a single unified tree with WithOneTree), models page I/O with a
// configurable page size and optional LRU buffer, and reports the paper's
// cost metrics (page faults, CPU time, points/obstacles evaluated,
// visibility-graph size) with every query.
package connquery

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"connquery/internal/anscache"
	"connquery/internal/core"
	"connquery/internal/flatgeom"
	"connquery/internal/geom"
	"connquery/internal/lru"
	"connquery/internal/planner"
	"connquery/internal/rtree"
	"connquery/internal/stats"
)

// Re-exported geometry types. PIDs in results index the point slice given
// to Open.
type (
	// Point is a 2D location.
	Point = geom.Point
	// Rect is a closed axis-aligned rectangle (the obstacle shape).
	Rect = geom.Rect
	// Segment is a query line segment.
	Segment = geom.Segment
	// Span is a parametric interval [Lo, Hi] ⊆ [0, 1] along a query segment.
	Span = geom.Span
)

// Result types re-exported from the query core.
type (
	// Result is a CONN answer.
	Result = core.Result
	// Tuple is one ⟨point, interval⟩ element of a CONN answer.
	Tuple = core.Tuple
	// KResult is a COkNN answer.
	KResult = core.KResult
	// KTuple is one ⟨point set, interval⟩ element of a COkNN answer.
	KTuple = core.KTuple
	// Neighbor is one answer of a point ONN query.
	Neighbor = core.Neighbor
	// Owner is one member of a COkNN answer set.
	Owner = core.Owner
	// Metrics reports one query's cost profile.
	Metrics = stats.QueryMetrics
	// JoinPair is one result of an obstructed join query.
	JoinPair = core.JoinPair
	// TrajectoryResult is a per-leg CONN answer over a polyline trajectory.
	TrajectoryResult = core.TrajectoryResult
)

// NoOwner marks intervals with no reachable data point.
const NoOwner = core.NoOwner

// Pt builds a Point.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// R builds a Rect from min/max coordinates.
func R(minX, minY, maxX, maxY float64) Rect { return geom.R(minX, minY, maxX, maxY) }

// Seg builds a Segment.
func Seg(a, b Point) Segment { return geom.Seg(a, b) }

// version is one immutable MVCC snapshot of the database: point and
// obstacle storage, the tombstone sets, and an engine over this version's
// R-tree roots. Once published through DB.cur a version is never modified;
// mutations build a successor (sharing all untouched structure) and swap the
// pointer. Every query loads the pointer exactly once, so it observes one
// consistent version end to end.
type version struct {
	epoch      uint64
	points     []Point // PID-indexed; append-only along a version chain
	obstacles  []Rect  // OID-indexed; append-only along a version chain
	deletedPts map[int32]bool
	deletedObs map[int32]bool
	eng        *core.Engine
}

// DB answers CONN-family queries over a point set and an obstacle set and
// supports mutations with snapshot isolation (multi-version concurrency
// control).
//
// Concurrency contract:
//
//   - Mutations (InsertPoint, DeletePoint, InsertObstacle, DeleteObstacle)
//     serialize on an internal lock and may run concurrently with any
//     queries on this DB or its clones: each mutation publishes a new
//     immutable version via an atomic pointer swap, and every query reads
//     the version that was current when it started.
//   - Queries on one DB handle may run concurrently with each other and
//     with the writer. The optional LRU buffer (WithBufferPages) locks
//     internally, so buffered handles are concurrency-safe too; the
//     page-fault counters are shared per handle, so concurrent queries
//     contaminate each other's per-query fault metrics (answers and the
//     NPE/NOE/SVG metrics are unaffected) — use one Clone per goroutine, or
//     CONNBatchRequest's per-worker views, for clean fault accounting.
//   - Clone pins the version current at call time: later mutations of the
//     parent are invisible to the clone, and the clone may itself be
//     mutated, forking an independent history. DB.Snapshot pins a version
//     without creating a new handle, for AtSnapshot/AtVersion queries.
type DB struct {
	cur atomic.Pointer[version]

	// Writer state. mu serializes mutations on this handle; readers never
	// take it. ownPts/ownObs record whether this handle exclusively owns the
	// spare capacity of the latest version's storage slices (false on
	// clones, which share the parent's arrays until their first append).
	mu     sync.Mutex
	ownPts bool
	ownObs bool

	states  *core.StatePool
	dataBuf *lru.Buffer
	obstBuf *lru.Buffer
	cfg     config

	// cache is the answer cache (nil when disabled): Exec keys executions by
	// canonical request fingerprint and epoch, mutations invalidate only the
	// entries whose impact region they touch (promoting the rest to the new
	// epoch), and Watch serves promoted answers without re-executing.
	cache *anscache.Cache

	// planner is the shared-subcomputation execution planner (nil when
	// disabled via WithNoPlanner): Exec admits each cache-missing request
	// into an (epoch, quantized region) group, and groups with concurrent
	// members share one region-scoped sight-line certificate table.
	planner *planner.Planner

	// pins holds the versions kept alive by unreleased Snapshot handles.
	pins pinSet

	// watch holds the live Watch subscriptions, woken per publish when the
	// commit's change box hits their answer's impact region.
	watch watchSet

	// motion is the tracked-object registry behind validity horizons
	// (motion.go): declared-speed objects with their last known position.
	// lastUnbounded is the latest epoch whose commit was NOT a
	// motion-bounded tick; a stamped ValidUntil horizon covers an epoch
	// range only while lastUnbounded stays at or below its base epoch.
	motion        motionTable
	lastUnbounded atomic.Uint64

	// dur is the durable attachment (nil for in-memory handles): the WAL
	// writer every mutation logs to before publishing, the checkpoint
	// cadence, and the latched fail-stop error. Guarded by mu.
	dur *durableState
}

// current returns the snapshot a query should run against.
func (db *DB) current() *version { return db.cur.Load() }

// Open builds a DB over the given points and obstacles. Points may lie on
// obstacle boundaries but not strictly inside; violations are reported as an
// error. Obstacle rectangles must be well-formed with strictly positive
// width and height (degenerate rectangles have no blocking interior and
// their coincident edges break occlusion assumptions; InsertObstacle
// enforces the same rule).
func Open(points []Point, obstacles []Rect, opts ...Option) (*DB, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if len(points) == 0 {
		return nil, errors.New("connquery: no data points")
	}
	if cfg.tuning.DisableVGReuse && cfg.oneTree {
		// The ablation rewinds the obstacle iterator per evaluated point,
		// which the unified-tree source cannot do without re-consuming data
		// points; reject the combination here rather than panicking (or
		// erroring) on the first query.
		return nil, errors.New("connquery: DisableVGReuse is incompatible with WithOneTree")
	}
	for i, p := range points {
		if !validPoint(p) {
			return nil, fmt.Errorf("connquery: point %d has a non-finite coordinate: %v", i, p)
		}
	}
	for i, o := range obstacles {
		if !validRect(o) {
			return nil, fmt.Errorf("connquery: obstacle %d is malformed: %v (must be finite with positive width and height)", i, o)
		}
	}
	db := &DB{
		cfg:    cfg,
		states: core.NewStatePool(),
		ownPts: true,
		ownObs: true,
		cache:  anscache.New(cfg.cacheBytes),
	}
	if !cfg.noPlanner {
		db.planner = planner.New(plannerMaxGroups)
	}
	v := &version{
		epoch:     1,
		points:    append([]Point(nil), points...),
		obstacles: append([]Rect(nil), obstacles...),
	}

	pointItems := make([]rtree.Item, len(points))
	for i, p := range points {
		pointItems[i] = rtree.PointItem(int32(i), p)
	}
	obstItems := make([]rtree.Item, len(obstacles))
	for i, o := range obstacles {
		obstItems[i] = rtree.ObstacleItem(int32(i), o)
	}

	eng := &core.Engine{
		Obstacles: v.obstacles,
		Kernel:    flatgeom.NewKernel(v.obstacles),
		Opts:      cfg.tuning,
		Epoch:     v.epoch,
		States:    db.states,
	}
	if cfg.oneTree {
		uni := rtree.New(rtree.Options{PageSize: cfg.pageSize})
		uni.BulkLoad(append(pointItems, obstItems...))
		counter := &stats.PageCounter{}
		if cfg.bufferPages > 0 {
			db.dataBuf = lru.New(cfg.bufferPages)
			counter.Buffer = db.dataBuf
		}
		uni.SetAccessRecorder(counter)
		eng.Unified = uni
		eng.DataCounter = counter
	} else {
		data := rtree.New(rtree.Options{PageSize: cfg.pageSize})
		data.BulkLoad(pointItems)
		obst := rtree.New(rtree.Options{PageSize: cfg.pageSize})
		obst.BulkLoad(obstItems)
		dc, oc := &stats.PageCounter{}, &stats.PageCounter{}
		if cfg.bufferPages > 0 {
			db.dataBuf = lru.New(cfg.bufferPages)
			db.obstBuf = lru.New(cfg.bufferPages)
			dc.Buffer = db.dataBuf
			oc.Buffer = db.obstBuf
		}
		data.SetAccessRecorder(dc)
		obst.SetAccessRecorder(oc)
		eng.Data, eng.Obst = data, obst
		eng.DataCounter, eng.ObstCounter = dc, oc
	}
	v.eng = eng

	// Validate point placement using the freshly built obstacle index.
	for i, p := range points {
		for _, o := range v.obstaclesNear(p) {
			if o.ContainsOpen(p) {
				return nil, fmt.Errorf("connquery: point %d (%v) lies strictly inside obstacle %v", i, p, o)
			}
		}
	}
	db.cur.Store(v)
	return db, nil
}

// obstaclesNear returns the obstacles whose rectangles contain (or touch) p.
// The lookup runs through an unrecorded view so validation reads never
// perturb I/O accounting or the LRU buffer.
func (v *version) obstaclesNear(p Point) []Rect {
	var out []Rect
	w := geom.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}
	v.obstTree().View(nil).Search(w, func(it rtree.Item) bool {
		if it.Kind == rtree.KindObstacle {
			out = append(out, v.obstacles[it.ID])
		}
		return true
	})
	return out
}

// obstTree returns the tree holding obstacle items.
func (v *version) obstTree() *rtree.Tree {
	if v.eng.OneTree() {
		return v.eng.Unified
	}
	return v.eng.Obst
}

// pointTree returns the tree holding point items.
func (v *version) pointTree() *rtree.Tree {
	if v.eng.OneTree() {
		return v.eng.Unified
	}
	return v.eng.Data
}

// NumPoints returns the size of the data set P (excluding deleted points).
func (db *DB) NumPoints() int {
	v := db.current()
	return len(v.points) - len(v.deletedPts)
}

// NumObstacles returns the size of the obstacle set O (excluding deleted
// obstacles).
func (db *DB) NumObstacles() int {
	v := db.current()
	return len(v.obstacles) - len(v.deletedObs)
}

// Version returns the database's snapshot epoch. It starts at 1 and
// increases by one with every successful mutation; clones report the epoch
// of the version they pinned.
func (db *DB) Version() uint64 { return db.current().epoch }

// PointByID returns the data point with the given result PID.
func (db *DB) PointByID(pid int32) (Point, bool) {
	v := db.current()
	if pid < 0 || int(pid) >= len(v.points) || v.deletedPts[pid] {
		return Point{}, false
	}
	return v.points[pid], true
}

// Points returns the live (non-deleted) data points of the current snapshot.
// The slice is freshly allocated and compact: its indexes are NOT PIDs when
// points have been deleted.
func (db *DB) Points() []Point {
	v := db.current()
	out := make([]Point, 0, len(v.points)-len(v.deletedPts))
	for pid, p := range v.points {
		if !v.deletedPts[int32(pid)] {
			out = append(out, p)
		}
	}
	return out
}

// Obstacles returns the live (non-deleted) obstacles of the current
// snapshot. The slice is freshly allocated and compact.
func (db *DB) Obstacles() []Rect {
	v := db.current()
	out := make([]Rect, 0, len(v.obstacles)-len(v.deletedObs))
	for oid, o := range v.obstacles {
		if !v.deletedObs[int32(oid)] {
			out = append(out, o)
		}
	}
	return out
}

// viewEngine builds a read engine over v's indexes with fresh page-fault
// counters and optional fresh LRU buffers. states may be nil, giving the
// engine a private query-state pool.
func viewEngine(v *version, cfg config, states *core.StatePool) (eng *core.Engine, dataBuf, obstBuf *lru.Buffer) {
	eng = &core.Engine{
		Obstacles: v.obstacles,
		Kernel:    v.eng.Kernel,
		Opts:      cfg.tuning,
		Epoch:     v.epoch,
		States:    states,
	}
	if v.eng.OneTree() {
		c := &stats.PageCounter{}
		if cfg.bufferPages > 0 {
			dataBuf = lru.New(cfg.bufferPages)
			c.Buffer = dataBuf
		}
		eng.Unified = v.eng.Unified.View(c)
		eng.DataCounter = c
		return eng, dataBuf, nil
	}
	dc, oc := &stats.PageCounter{}, &stats.PageCounter{}
	if cfg.bufferPages > 0 {
		dataBuf = lru.New(cfg.bufferPages)
		obstBuf = lru.New(cfg.bufferPages)
		dc.Buffer = dataBuf
		oc.Buffer = obstBuf
	}
	eng.Data = v.eng.Data.View(dc)
	eng.Obst = v.eng.Obst.View(oc)
	eng.DataCounter, eng.ObstCounter = dc, oc
	return eng, dataBuf, obstBuf
}

// Clone returns an independent query handle pinned to the current snapshot:
// R-tree nodes, point/obstacle storage and tombstones are shared with this
// version, while page-fault counters and the optional LRU buffer are fresh
// per clone. Later mutations of the parent are invisible to the clone (and
// vice versa: a mutated clone forks its own version chain), so a clone is a
// stable, fully consistent view. Use one clone per goroutine when you need
// uncontaminated per-query fault metrics. Snapshot pins and Watch
// subscriptions do not carry over to the clone.
func (db *DB) Clone() *DB {
	v := db.current()
	// The clone starts with an empty answer cache of the same budget: it may
	// fork its own mutation history, so sharing entries (or their promotion
	// stream) with the parent would be unsound.
	cp := &DB{cfg: db.cfg, states: core.NewStatePool(), cache: anscache.New(db.cfg.cacheBytes)}
	if !db.cfg.noPlanner {
		// A fresh planner, not the parent's: the clone may fork its own
		// epoch chain, and groups must never cross handles.
		cp.planner = planner.New(plannerMaxGroups)
	}
	eng, dataBuf, obstBuf := viewEngine(v, db.cfg, cp.states)
	cp.dataBuf, cp.obstBuf = dataBuf, obstBuf
	cp.cur.Store(&version{
		epoch:      v.epoch,
		points:     v.points,
		obstacles:  v.obstacles,
		deletedPts: v.deletedPts,
		deletedObs: v.deletedObs,
		eng:        eng,
	})
	return cp
}

// ResetBufferStats zeroes the LRU hit/miss counters while keeping resident
// pages, the boundary between the paper's warm-up and measurement phases.
// The buffers lock internally, so it is safe to call while queries run;
// in-flight queries simply split their counts across the two phases.
func (db *DB) ResetBufferStats() {
	if db.dataBuf != nil {
		db.dataBuf.ResetStats()
	}
	if db.obstBuf != nil {
		db.obstBuf.ResetStats()
	}
}
