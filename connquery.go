// Package connquery is a spatial query library for continuous obstructed
// nearest neighbor (CONN) search, reproducing Gao & Zheng, "Continuous
// Obstructed Nearest Neighbor Queries in Spatial Databases" (SIGMOD 2009).
//
// Given a set of data points P, a set of rectangular obstacles O, and a
// query line segment q, a CONN query reports, for every position along q,
// which data point is nearest by obstructed distance — the length of the
// shortest path that does not cross any obstacle's interior — together with
// the exact split positions where the answer changes. COkNN generalizes the
// answer to the k nearest points per position.
//
// Basic usage:
//
//	db, err := connquery.Open(points, obstacles)
//	if err != nil { ... }
//	res, metrics, err := db.CONN(connquery.Seg(start, end))
//	if err != nil { ... }
//	for _, tup := range res.Tuples {
//	    fmt.Println(tup.P, "owns", res.Q.SubSegment(tup.Span.Lo, tup.Span.Hi))
//	}
//	fmt.Println("cost:", metrics.TotalCost())
//
// The library indexes P and O with R*-trees (two separate trees by default,
// or a single unified tree with WithOneTree), models page I/O with a
// configurable page size and optional LRU buffer, and reports the paper's
// cost metrics (page faults, CPU time, points/obstacles evaluated,
// visibility-graph size) with every query.
package connquery

import (
	"errors"
	"fmt"

	"connquery/internal/core"
	"connquery/internal/geom"
	"connquery/internal/lru"
	"connquery/internal/rtree"
	"connquery/internal/stats"
)

// Re-exported geometry types. PIDs in results index the point slice given
// to Open.
type (
	// Point is a 2D location.
	Point = geom.Point
	// Rect is a closed axis-aligned rectangle (the obstacle shape).
	Rect = geom.Rect
	// Segment is a query line segment.
	Segment = geom.Segment
	// Span is a parametric interval [Lo, Hi] ⊆ [0, 1] along a query segment.
	Span = geom.Span
)

// Result types re-exported from the query core.
type (
	// Result is a CONN answer.
	Result = core.Result
	// Tuple is one ⟨point, interval⟩ element of a CONN answer.
	Tuple = core.Tuple
	// KResult is a COkNN answer.
	KResult = core.KResult
	// KTuple is one ⟨point set, interval⟩ element of a COkNN answer.
	KTuple = core.KTuple
	// Neighbor is one answer of a point ONN query.
	Neighbor = core.Neighbor
	// Metrics reports one query's cost profile.
	Metrics = stats.QueryMetrics
)

// NoOwner marks intervals with no reachable data point.
const NoOwner = core.NoOwner

// Pt builds a Point.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// R builds a Rect from min/max coordinates.
func R(minX, minY, maxX, maxY float64) Rect { return geom.R(minX, minY, maxX, maxY) }

// Seg builds a Segment.
func Seg(a, b Point) Segment { return geom.Seg(a, b) }

// DB is an immutable snapshot database over a point set and an obstacle set,
// ready to answer CONN-family queries. A DB is safe for concurrent reads
// only when metrics collection is not shared (each goroutine should use its
// own DB or external synchronization; the page-fault counters and LRU buffer
// are per-DB mutable state).
type DB struct {
	eng        *core.Engine
	points     []Point
	obstacles  []Rect
	deletedPts map[int32]bool
	deletedObs map[int32]bool
	dataBuf    *lru.Buffer
	obstBuf    *lru.Buffer
	cfg        config
}

// Open builds a DB over the given points and obstacles. Points may lie on
// obstacle boundaries but not strictly inside; violations are reported as an
// error. Obstacle rectangles must be well-formed (Min <= Max).
func Open(points []Point, obstacles []Rect, opts ...Option) (*DB, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if len(points) == 0 {
		return nil, errors.New("connquery: no data points")
	}
	for i, p := range points {
		if !validPoint(p) {
			return nil, fmt.Errorf("connquery: point %d has a non-finite coordinate: %v", i, p)
		}
	}
	for i, o := range obstacles {
		if !validRect(o) {
			return nil, fmt.Errorf("connquery: obstacle %d is malformed: %v", i, o)
		}
	}
	db := &DB{
		points:    append([]Point(nil), points...),
		obstacles: append([]Rect(nil), obstacles...),
		cfg:       cfg,
	}

	pointItems := make([]rtree.Item, len(points))
	for i, p := range points {
		pointItems[i] = rtree.PointItem(int32(i), p)
	}
	obstItems := make([]rtree.Item, len(obstacles))
	for i, o := range obstacles {
		obstItems[i] = rtree.ObstacleItem(int32(i), o)
	}

	eng := &core.Engine{Obstacles: db.obstacles, Opts: cfg.tuning}
	if cfg.oneTree {
		uni := rtree.New(rtree.Options{PageSize: cfg.pageSize})
		uni.BulkLoad(append(pointItems, obstItems...))
		counter := &stats.PageCounter{}
		if cfg.bufferPages > 0 {
			db.dataBuf = lru.New(cfg.bufferPages)
			counter.Buffer = db.dataBuf
		}
		uni.SetAccessRecorder(counter)
		eng.Unified = uni
		eng.DataCounter = counter
	} else {
		data := rtree.New(rtree.Options{PageSize: cfg.pageSize})
		data.BulkLoad(pointItems)
		obst := rtree.New(rtree.Options{PageSize: cfg.pageSize})
		obst.BulkLoad(obstItems)
		dc, oc := &stats.PageCounter{}, &stats.PageCounter{}
		if cfg.bufferPages > 0 {
			db.dataBuf = lru.New(cfg.bufferPages)
			db.obstBuf = lru.New(cfg.bufferPages)
			dc.Buffer = db.dataBuf
			oc.Buffer = db.obstBuf
		}
		data.SetAccessRecorder(dc)
		obst.SetAccessRecorder(oc)
		eng.Data, eng.Obst = data, obst
		eng.DataCounter, eng.ObstCounter = dc, oc
	}
	db.eng = eng

	// Validate point placement using the freshly built obstacle index.
	for i, p := range points {
		for _, o := range db.obstaclesNear(p) {
			if o.ContainsOpen(p) {
				return nil, fmt.Errorf("connquery: point %d (%v) lies strictly inside obstacle %v", i, p, o)
			}
		}
	}
	return db, nil
}

func (db *DB) obstaclesNear(p Point) []Rect {
	var out []Rect
	w := geom.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}
	search := func(t *rtree.Tree) {
		t.Search(w, func(it rtree.Item) bool {
			if it.Kind == rtree.KindObstacle {
				out = append(out, db.obstacles[it.ID])
			}
			return true
		})
	}
	if db.eng.OneTree() {
		search(db.eng.Unified)
	} else {
		search(db.eng.Obst)
	}
	return out
}

// NumPoints returns the size of the data set P (excluding deleted points).
func (db *DB) NumPoints() int { return len(db.points) - len(db.deletedPts) }

// NumObstacles returns the size of the obstacle set O (excluding deleted
// obstacles).
func (db *DB) NumObstacles() int { return len(db.obstacles) - len(db.deletedObs) }

// PointByID returns the data point with the given result PID.
func (db *DB) PointByID(pid int32) (Point, bool) {
	if pid < 0 || int(pid) >= len(db.points) || db.deletedPts[pid] {
		return Point{}, false
	}
	return db.points[pid], true
}

// Clone returns an independent query handle over the same indexes: the
// R-tree nodes, points and obstacles are shared (they are immutable after
// Open), while page-fault counters and the optional LRU buffer are fresh
// per clone. Use one clone per goroutine for concurrent querying.
func (db *DB) Clone() *DB {
	cp := &DB{
		points:    db.points,
		obstacles: db.obstacles,
		cfg:       db.cfg,
	}
	eng := &core.Engine{Obstacles: db.obstacles, Opts: db.cfg.tuning}
	if db.eng.OneTree() {
		c := &stats.PageCounter{}
		if db.cfg.bufferPages > 0 {
			cp.dataBuf = lru.New(db.cfg.bufferPages)
			c.Buffer = cp.dataBuf
		}
		eng.Unified = db.eng.Unified.View(c)
		eng.DataCounter = c
	} else {
		dc, oc := &stats.PageCounter{}, &stats.PageCounter{}
		if db.cfg.bufferPages > 0 {
			cp.dataBuf = lru.New(db.cfg.bufferPages)
			cp.obstBuf = lru.New(db.cfg.bufferPages)
			dc.Buffer = cp.dataBuf
			oc.Buffer = cp.obstBuf
		}
		eng.Data = db.eng.Data.View(dc)
		eng.Obst = db.eng.Obst.View(oc)
		eng.DataCounter, eng.ObstCounter = dc, oc
	}
	cp.eng = eng
	return cp
}

// ResetBufferStats zeroes the LRU hit/miss counters while keeping resident
// pages, the boundary between the paper's warm-up and measurement phases.
func (db *DB) ResetBufferStats() {
	if db.dataBuf != nil {
		db.dataBuf.ResetStats()
	}
	if db.obstBuf != nil {
		db.obstBuf.ResetStats()
	}
}

// validateQuery rejects unusable query segments.
func (db *DB) validateQuery(q Segment) error {
	if q.Degenerate() {
		return errors.New("connquery: query segment is degenerate (use ONN for point queries)")
	}
	return nil
}

// CONN answers a continuous obstructed nearest neighbor query over q: the
// returned tuples partition q and each names the data point that is the
// obstructed NN of every position in its interval.
func (db *DB) CONN(q Segment) (*Result, Metrics, error) {
	if err := db.validateQuery(q); err != nil {
		return nil, Metrics{}, err
	}
	res, m := db.eng.CONN(q)
	return res, m, nil
}

// CONNBatch answers a slice of CONN queries concurrently on a bounded
// worker pool and returns results and metrics in input order. Each worker
// queries through its own Clone — indexes are shared, page-fault counters
// and the optional LRU buffer are per worker, and per-query scratch (the
// local visibility graph, Dijkstra state, caches) is reused across all the
// queries a worker processes. workers <= 0 selects GOMAXPROCS. All queries
// are validated before any work starts.
func (db *DB) CONNBatch(queries []Segment, workers int) ([]*Result, []Metrics, error) {
	for i, q := range queries {
		if err := db.validateQuery(q); err != nil {
			return nil, nil, fmt.Errorf("connquery: batch query %d: %w", i, err)
		}
	}
	results, metrics := core.RunCONNBatch(func() *core.Engine { return db.Clone().eng }, queries, workers)
	return results, metrics, nil
}

// COKNN answers a continuous obstructed k-nearest-neighbor query (k >= 1).
func (db *DB) COKNN(q Segment, k int) (*KResult, Metrics, error) {
	if err := db.validateQuery(q); err != nil {
		return nil, Metrics{}, err
	}
	if k < 1 {
		return nil, Metrics{}, fmt.Errorf("connquery: k must be >= 1, got %d", k)
	}
	res, m := db.eng.COKNN(q, k)
	return res, m, nil
}

// ONN answers a snapshot obstructed k-nearest-neighbor query at a point.
func (db *DB) ONN(p Point, k int) ([]Neighbor, Metrics, error) {
	if k < 1 {
		return nil, Metrics{}, fmt.Errorf("connquery: k must be >= 1, got %d", k)
	}
	nbrs, m := db.eng.ONN(p, k)
	return nbrs, m, nil
}

// CNN answers a classical Euclidean continuous nearest neighbor query,
// ignoring obstacles — the baseline the paper contrasts in Figure 1.
func (db *DB) CNN(q Segment) (*Result, Metrics, error) {
	if err := db.validateQuery(q); err != nil {
		return nil, Metrics{}, err
	}
	res, m := db.eng.CNN(q)
	return res, m, nil
}

// NaiveCONN answers CONN by sampling: an ONN query at samples+1 evenly
// spaced positions. Approximate and slow by design; it is the baseline the
// paper's introduction rules out.
func (db *DB) NaiveCONN(q Segment, samples int) (*Result, Metrics, error) {
	if err := db.validateQuery(q); err != nil {
		return nil, Metrics{}, err
	}
	res, m := db.eng.NaiveCONN(q, samples)
	return res, m, nil
}

// JoinPair is one result of an obstructed join query.
type JoinPair = core.JoinPair

// EDistanceJoin returns every (query point, data point) pair whose
// obstructed distance is at most e (the obstructed e-distance join of
// Zhang et al., EDBT 2004).
func (db *DB) EDistanceJoin(queries []Point, e float64) ([]JoinPair, Metrics, error) {
	if e < 0 {
		return nil, Metrics{}, fmt.Errorf("connquery: negative join distance %v", e)
	}
	pairs, m := db.eng.EDistanceJoin(queries, e)
	return pairs, m, nil
}

// ClosestPair returns the (query point, data point) pair with the smallest
// obstructed distance. With no query points the returned pair has
// QIdx == -1 and infinite distance.
func (db *DB) ClosestPair(queries []Point) (JoinPair, Metrics) {
	pair, m := db.eng.ClosestPair(queries)
	return pair, m
}

// DistanceSemiJoin returns, for each query point, its obstructed nearest
// data point, sorted ascending by distance.
func (db *DB) DistanceSemiJoin(queries []Point) ([]JoinPair, Metrics) {
	pairs, m := db.eng.DistanceSemiJoin(queries)
	return pairs, m
}

// VisibleKNN returns the k nearest data points (Euclidean) among those
// visible from p — obstacles occlude rather than detour (the VkNN query of
// Nutanong et al., DASFAA 2007).
func (db *DB) VisibleKNN(p Point, k int) ([]Neighbor, Metrics, error) {
	if k < 1 {
		return nil, Metrics{}, fmt.Errorf("connquery: k must be >= 1, got %d", k)
	}
	nbrs, m := db.eng.VisibleKNN(p, k)
	return nbrs, m, nil
}

// TrajectoryResult is a per-leg CONN answer over a polyline trajectory.
type TrajectoryResult = core.TrajectoryResult

// TrajectoryCONN answers a CONN query over a polyline trajectory (the
// paper's §6 trajectory extension): the obstructed NN of every point on
// every leg. Degenerate legs are skipped.
func (db *DB) TrajectoryCONN(waypoints []Point) (*TrajectoryResult, Metrics, error) {
	if len(waypoints) < 2 {
		return nil, Metrics{}, errors.New("connquery: trajectory needs at least two waypoints")
	}
	res, m := db.eng.TrajectoryCONN(waypoints)
	if len(res.Legs) == 0 {
		return nil, Metrics{}, errors.New("connquery: all trajectory legs are degenerate")
	}
	return res, m, nil
}

// ObstructedRange returns every data point whose obstructed distance to
// center is at most radius, sorted ascending (the obstructed range query of
// Zhang et al., EDBT 2004).
func (db *DB) ObstructedRange(center Point, radius float64) ([]Neighbor, Metrics, error) {
	if radius < 0 {
		return nil, Metrics{}, fmt.Errorf("connquery: negative radius %v", radius)
	}
	nbrs, m := db.eng.ObstructedRange(center, radius)
	return nbrs, m, nil
}

// ObstructedDist returns the exact obstructed distance between two free
// points under the DB's obstacle set, +Inf when no path exists. It uses the
// same incremental obstacle retrieval as the queries, so only obstacles near
// the pair are examined.
func (db *DB) ObstructedDist(a, b Point) float64 {
	return db.eng.ObstructedDistance(a, b)
}
