package connquery

// The differential harness behind the answer cache's correctness claim:
// every answer Exec serves — fresh, cached at the same epoch, or promoted
// across mutations by the surgical invalidator — must be bit-identical in
// payload and epoch to a cache-bypassed execution of the same request at
// the same pinned version. The harness drives a randomized workload that
// interleaves all 13 request kinds with point/obstacle insertions and
// deletions, re-issuing earlier requests so entries are hit both at their
// original epoch and after surviving mutations, and checks every single
// answer against WithNoCache ground truth. Metrics (NPE/NOE/|SVG|) are
// deliberately excluded from the comparison for cache hits: a hit replays
// the populating execution's cost profile by contract.
//
// The concurrent phase runs the same invariant with live readers racing a
// writer (plus snapshot-pinned readers), so `go test -race ./...` also
// proves the cache's synchronization.

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// diffWorkload owns the mutable ground-truth bookkeeping of one harness run.
type diffWorkload struct {
	rng      *rand.Rand
	db       *DB
	hot      *hotBox // non-nil confines coordinate draws (planner storms)
	alivePts []int32
	aliveObs []int32
	history  []Request // previously issued requests, re-issued to force hits
}

const diffSide = 100.0 // coordinate range of the harness's world

// hotBox confines a workload's coordinate draws to a sub-square and scales
// the segment/radius draws to match: the planner storms concentrate their
// requests so quantized group keys collide.
type hotBox struct{ lo, side float64 }

// scale is the draw-size multiplier relative to the default world side.
func (w *diffWorkload) scale() float64 {
	if w.hot == nil {
		return 1
	}
	return w.hot.side / diffSide
}

func (w *diffWorkload) pt() Point {
	if w.hot != nil {
		return Pt(w.hot.lo+w.rng.Float64()*w.hot.side, w.hot.lo+w.rng.Float64()*w.hot.side)
	}
	return Pt(w.rng.Float64()*diffSide, w.rng.Float64()*diffSide)
}

func (w *diffWorkload) seg() Segment {
	a := w.pt()
	d := (2 + w.rng.Float64()*18) * w.scale()
	ang := w.rng.Float64() * 2 * math.Pi
	return Seg(a, Pt(a.X+d*math.Cos(ang), a.Y+d*math.Sin(ang)))
}

func (w *diffWorkload) pts(min, max int) []Point {
	n := min + w.rng.Intn(max-min+1)
	out := make([]Point, n)
	for i := range out {
		out[i] = w.pt()
	}
	return out
}

// newRequest draws one request across all 13 kinds.
func (w *diffWorkload) newRequest() Request {
	switch w.rng.Intn(13) {
	case 0:
		return CONNRequest{Seg: w.seg()}
	case 1:
		return COkNNRequest{Seg: w.seg(), K: 1 + w.rng.Intn(3)}
	case 2:
		return ONNRequest{P: w.pt(), K: 1 + w.rng.Intn(3)}
	case 3:
		return CNNRequest{Seg: w.seg()}
	case 4:
		return NaiveCONNRequest{Seg: w.seg(), Samples: 2 + w.rng.Intn(3)}
	case 5:
		return RangeRequest{Center: w.pt(), Radius: w.rng.Float64() * 25 * w.scale()}
	case 6:
		return VisibleKNNRequest{P: w.pt(), K: 1 + w.rng.Intn(3)}
	case 7:
		return DistanceRequest{A: w.pt(), B: w.pt()}
	case 8:
		wp := w.pts(2, 4)
		return TrajectoryRequest{Waypoints: wp}
	case 9:
		segs := make([]Segment, 1+w.rng.Intn(3))
		for i := range segs {
			segs[i] = w.seg()
		}
		return CONNBatchRequest{Segs: segs}
	case 10:
		return EDistanceJoinRequest{Queries: w.pts(1, 3), E: w.rng.Float64() * 20 * w.scale()}
	case 11:
		return DistanceSemiJoinRequest{Queries: w.pts(1, 3)}
	default:
		return ClosestPairRequest{Queries: w.pts(0, 3)}
	}
}

// request picks the next request, re-issuing a historical one 45% of the
// time so entries are exercised at their original epoch and after
// promotions.
func (w *diffWorkload) request() Request {
	if len(w.history) > 0 && w.rng.Float64() < 0.45 {
		return w.history[w.rng.Intn(len(w.history))]
	}
	req := w.newRequest()
	if len(w.history) < 128 {
		w.history = append(w.history, req)
	} else {
		w.history[w.rng.Intn(len(w.history))] = req
	}
	return req
}

// mutate applies one random mutation, keeping the alive-ID books.
func (w *diffWorkload) mutate(t *testing.T) {
	t.Helper()
	switch w.rng.Intn(4) {
	case 0:
		if pid, err := w.db.InsertPoint(w.pt()); err == nil {
			w.alivePts = append(w.alivePts, pid)
		}
	case 1:
		lo := w.pt()
		r := R(lo.X, lo.Y, lo.X+0.5+w.rng.Float64()*6, lo.Y+0.5+w.rng.Float64()*6)
		if oid, err := w.db.InsertObstacle(r); err == nil {
			w.aliveObs = append(w.aliveObs, oid)
		}
	case 2:
		if len(w.alivePts) > 1 { // keep at least one point alive
			i := w.rng.Intn(len(w.alivePts))
			if !w.db.DeletePoint(w.alivePts[i]) {
				t.Errorf("delete of alive point %d failed", w.alivePts[i])
				return
			}
			w.alivePts = append(w.alivePts[:i], w.alivePts[i+1:]...)
		}
	default:
		if len(w.aliveObs) > 0 {
			i := w.rng.Intn(len(w.aliveObs))
			if !w.db.DeleteObstacle(w.aliveObs[i]) {
				t.Errorf("delete of alive obstacle %d failed", w.aliveObs[i])
				return
			}
			w.aliveObs = append(w.aliveObs[:i], w.aliveObs[i+1:]...)
		}
	}
}

// newDiffWorkload seeds the world with a few points and obstacles.
func newDiffWorkload(t *testing.T, seed int64) *diffWorkload {
	t.Helper()
	w := &diffWorkload{rng: rand.New(rand.NewSource(seed))}
	points := make([]Point, 16)
	for i := range points {
		points[i] = w.pt()
	}
	var obstacles []Rect
	for len(obstacles) < 8 {
		lo := w.pt()
		r := R(lo.X, lo.Y, lo.X+0.5+w.rng.Float64()*6, lo.Y+0.5+w.rng.Float64()*6)
		keep := true
		for _, p := range points {
			if r.ContainsOpen(p) {
				keep = false
				break
			}
		}
		if keep {
			obstacles = append(obstacles, r)
		}
	}
	db, err := Open(points, obstacles, WithAnswerCache(8<<20))
	if err != nil {
		t.Fatal(err)
	}
	w.db = db
	for i := range points {
		w.alivePts = append(w.alivePts, int32(i))
	}
	for i := range obstacles {
		w.aliveObs = append(w.aliveObs, int32(i))
	}
	return w
}

// checkAnswer proves ans (possibly cached/promoted) bit-identical to a
// cache-bypassed execution of req at the same pinned version.
func checkAnswer(t *testing.T, db *DB, req Request, ans *Answer, opts ...QueryOption) {
	t.Helper()
	want, err := db.Exec(context.Background(), req, append(opts, WithNoCache())...)
	if err != nil {
		t.Errorf("%s: uncached re-execution failed: %v", req.Kind(), err)
		return
	}
	if ans.Epoch() != want.Epoch() {
		t.Errorf("%s: epoch %d != uncached %d", req.Kind(), ans.Epoch(), want.Epoch())
		return
	}
	if !answersEqual(ans.Value(), want.Value()) {
		t.Errorf("%s (cached=%v, epoch %d): payload differs from uncached execution\n cached: %#v\n fresh:  %#v",
			req.Kind(), ans.Cached(), ans.Epoch(), ans.Value(), want.Value())
	}
}

// TestDifferentialCacheConsistency is the sequential harness: ≥10k randomized
// operations interleaving every request kind with mutations, every answer
// differentially checked against WithNoCache at the same version.
func TestDifferentialCacheConsistency(t *testing.T) {
	const ops = 10000
	w := newDiffWorkload(t, 1)
	ctx := context.Background()

	var snap *Snapshot
	for i := 0; i < ops; i++ {
		roll := w.rng.Float64()
		switch {
		case roll < 0.15:
			w.mutate(t)
		case roll < 0.17:
			// Rotate an explicit pin so promoted entries are also checked at
			// old epochs.
			if snap != nil {
				snap.Release()
			}
			snap = w.db.Snapshot()
		case roll < 0.22 && snap != nil && !snap.Released():
			req := w.request()
			ans, err := w.db.Exec(ctx, req, AtSnapshot(snap))
			if err != nil {
				continue // validation errors are fine; both paths agree below
			}
			checkAnswer(t, w.db, req, ans, AtSnapshot(snap))
		default:
			req := w.request()
			ans, err := w.db.Exec(ctx, req)
			if err != nil {
				// Validation failures must fail identically without caching.
				if _, err2 := w.db.Exec(ctx, req, WithNoCache()); err2 == nil {
					t.Fatalf("%s: cached path errored (%v), uncached succeeded", req.Kind(), err)
				}
				continue
			}
			checkAnswer(t, w.db, req, ans, AtVersion(ans.Epoch()))
		}
	}
	st := w.db.CacheStats()
	t.Logf("cache stats after %d ops: %+v", ops, st)
	if st.Hits == 0 || st.PromotedHits == 0 || st.Promotions == 0 || st.Invalidations == 0 {
		t.Fatalf("harness failed to exercise the cache: %+v", st)
	}
}

// TestDifferentialCacheConsistencyConcurrent runs the same invariant with
// live readers racing the writer: each reader pins the answer's epoch via a
// snapshot taken around the exec, so the uncached ground truth runs against
// exactly the version the (possibly promoted) answer claims.
func TestDifferentialCacheConsistencyConcurrent(t *testing.T) {
	w := newDiffWorkload(t, 2)
	ctx := context.Background()

	const readers = 4
	const readerOps = 250
	const writerOps = 150

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		wr := &diffWorkload{rng: rand.New(rand.NewSource(99)), db: w.db,
			alivePts: append([]int32(nil), w.alivePts...),
			aliveObs: append([]int32(nil), w.aliveObs...)}
		for i := 0; i < writerOps; i++ {
			wr.mutate(t)
			// Spread the mutations across the readers' lifetime so entries
			// get promoted (and served promoted) while reads are in flight.
			time.Sleep(time.Millisecond)
		}
	}()
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rd := &diffWorkload{rng: rand.New(rand.NewSource(1000 + int64(g))), db: w.db}
			for i := 0; i < readerOps; i++ {
				req := rd.request()
				// Pin the current version so the differential check can rerun
				// at the exact epoch even if the writer advances meanwhile.
				snap := w.db.Snapshot()
				ans, err := w.db.Exec(ctx, req, AtSnapshot(snap))
				if err != nil {
					snap.Release()
					continue
				}
				if ans.Epoch() != snap.Epoch() {
					t.Errorf("%s: answered epoch %d, pinned %d", req.Kind(), ans.Epoch(), snap.Epoch())
				}
				checkAnswer(t, w.db, req, ans, AtSnapshot(snap))
				snap.Release()
			}
		}(g)
	}
	wg.Wait()
	t.Logf("concurrent cache stats: %+v", w.db.CacheStats())
}
