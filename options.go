package connquery

import "connquery/internal/core"

// config holds DB construction parameters.
type config struct {
	pageSize    int
	bufferPages int
	oneTree     bool
	cacheBytes  int64
	tuning      core.Options
}

func defaultConfig() config {
	return config{pageSize: 4096, cacheBytes: DefaultAnswerCacheBytes}
}

// Option configures Open.
type Option func(*config)

// WithPageSize sets the simulated disk page size in bytes, which determines
// the R-tree fanout. The paper uses 4 KB (the default).
func WithPageSize(bytes int) Option {
	return func(c *config) { c.pageSize = bytes }
}

// WithBufferPages installs an LRU page buffer of the given capacity in front
// of each R-tree (the paper's Figure 12 experiment). Zero (the default)
// means every page access is charged as a fault.
func WithBufferPages(pages int) Option {
	return func(c *config) { c.bufferPages = pages }
}

// WithOneTree indexes data points and obstacles in a single unified R-tree
// (the paper's §4.5 variant, evaluated in Figure 13) instead of the default
// two separate trees.
func WithOneTree() Option {
	return func(c *config) { c.oneTree = true }
}

// WithAnswerCache sets the answer cache budget in bytes
// (DefaultAnswerCacheBytes when the option is absent). Exec serves repeated
// requests at an unchanged epoch straight from the cache, mutations
// invalidate only the entries whose spatial impact region they touch, and
// Watch delivers promoted answers without re-executing. bytes <= 0 disables
// caching for the handle; WithNoCache bypasses it for a single call.
// Cached answers share payloads across callers — results must be treated
// as read-only, which has always been the library's contract.
func WithAnswerCache(bytes int64) Option {
	return func(c *config) { c.cacheBytes = bytes }
}

// Tuning toggles individual algorithmic optimizations, primarily for
// ablation studies. The zero value is the full algorithm as published.
type Tuning struct {
	// DisableLemma1 turns off the endpoint-dominance shortcut in the
	// result-list update.
	DisableLemma1 bool
	// DisableLemma6 turns off the triangle refinement of candidate control
	// regions in control-point-list computation.
	DisableLemma6 bool
	// DisableLemma7 turns off the CPLMAX early-termination bound in
	// control-point-list computation.
	DisableLemma7 bool
	// DisableVGReuse rebuilds the local visibility graph for every data
	// point instead of sharing it across the whole query.
	DisableVGReuse bool
	// UseBisectionSolver replaces the closed-form quadratic split-point
	// solver with a numeric grid-plus-bisection root finder.
	UseBisectionSolver bool
}

// toCore maps the public ablation switches onto the engine's options.
func (t Tuning) toCore() core.Options {
	return core.Options{
		DisableLemma1:      t.DisableLemma1,
		DisableLemma6:      t.DisableLemma6,
		DisableLemma7:      t.DisableLemma7,
		DisableVGReuse:     t.DisableVGReuse,
		UseBisectionSolver: t.UseBisectionSolver,
	}
}

// WithTuning applies ablation switches to every query on the handle;
// WithQueryTuning overrides them for a single Exec call.
func WithTuning(t Tuning) Option {
	return func(c *config) { c.tuning = t.toCore() }
}
