package connquery

import (
	"time"

	"connquery/internal/core"
)

// config holds DB construction parameters.
type config struct {
	pageSize    int
	bufferPages int
	oneTree     bool
	cacheBytes  int64
	noPlanner   bool
	tuning      core.Options

	// Durable-tier knobs, consumed by OpenDurable/OpenDurableSharded and
	// ignored by the in-memory constructors.
	boot        *bootstrapData
	groupWindow time.Duration
	ckptEvery   int
	syncAck     bool
}

func defaultConfig() config {
	return config{pageSize: 4096, cacheBytes: DefaultAnswerCacheBytes}
}

// bootstrapData is the initial dataset for a fresh durable directory.
type bootstrapData struct {
	points    []Point
	obstacles []Rect
}

// Option configures Open.
type Option func(*config)

// WithPageSize sets the simulated disk page size in bytes, which determines
// the R-tree fanout. The paper uses 4 KB (the default).
func WithPageSize(bytes int) Option {
	return func(c *config) { c.pageSize = bytes }
}

// WithBufferPages installs an LRU page buffer of the given capacity in front
// of each R-tree (the paper's Figure 12 experiment). Zero (the default)
// means every page access is charged as a fault.
func WithBufferPages(pages int) Option {
	return func(c *config) { c.bufferPages = pages }
}

// WithOneTree indexes data points and obstacles in a single unified R-tree
// (the paper's §4.5 variant, evaluated in Figure 13) instead of the default
// two separate trees.
func WithOneTree() Option {
	return func(c *config) { c.oneTree = true }
}

// WithAnswerCache sets the answer cache budget in bytes
// (DefaultAnswerCacheBytes when the option is absent). Exec serves repeated
// requests at an unchanged epoch straight from the cache, mutations
// invalidate only the entries whose spatial impact region they touch, and
// Watch delivers promoted answers without re-executing. bytes <= 0 disables
// caching for the handle; WithNoCache bypasses it for a single call.
// Cached answers share payloads across callers — results must be treated
// as read-only, which has always been the library's contract.
func WithAnswerCache(bytes int64) Option {
	return func(c *config) { c.cacheBytes = bytes }
}

// WithPlanner enables the shared-subcomputation execution planner (the
// default): concurrent Execs whose query regions fall into the same
// (epoch, quantized cell) group share one region-scoped sight-line
// certificate table instead of each paying the full private
// visibility-graph cost. Answers and the machine-independent metrics are
// bit-identical with the planner on or off; only throughput under
// overlapping query storms changes. See DB.PlannerStats for the counters.
func WithPlanner() Option {
	return func(c *config) { c.noPlanner = false }
}

// WithNoPlanner disables the execution planner for the handle: every Exec
// runs the private path unconditionally. The escape hatch exists for
// differential testing (plandiff_test.go twins a planner handle against a
// WithNoPlanner one) and for latency-critical deployments that prefer no
// cross-query coupling.
func WithNoPlanner() Option {
	return func(c *config) { c.noPlanner = true }
}

// Tuning toggles individual algorithmic optimizations, primarily for
// ablation studies. The zero value is the full algorithm as published.
type Tuning struct {
	// DisableLemma1 turns off the endpoint-dominance shortcut in the
	// result-list update.
	DisableLemma1 bool
	// DisableLemma6 turns off the triangle refinement of candidate control
	// regions in control-point-list computation.
	DisableLemma6 bool
	// DisableLemma7 turns off the CPLMAX early-termination bound in
	// control-point-list computation.
	DisableLemma7 bool
	// DisableVGReuse rebuilds the local visibility graph for every data
	// point instead of sharing it across the whole query.
	DisableVGReuse bool
	// UseBisectionSolver replaces the closed-form quadratic split-point
	// solver with a numeric grid-plus-bisection root finder.
	UseBisectionSolver bool
}

// toCore maps the public ablation switches onto the engine's options.
func (t Tuning) toCore() core.Options {
	return core.Options{
		DisableLemma1:      t.DisableLemma1,
		DisableLemma6:      t.DisableLemma6,
		DisableLemma7:      t.DisableLemma7,
		DisableVGReuse:     t.DisableVGReuse,
		UseBisectionSolver: t.UseBisectionSolver,
	}
}

// WithTuning applies ablation switches to every query on the handle;
// WithQueryTuning overrides them for a single Exec call.
func WithTuning(t Tuning) Option {
	return func(c *config) { c.tuning = t.toCore() }
}

// WithBootstrapData supplies the initial dataset for OpenDurable and
// OpenDurableSharded when the directory holds no durable state yet: the
// world is built exactly as Open/OpenSharded would (same validation, same
// IDs, epoch 1) and an initial checkpoint is written before the call
// returns. The option is an error when the directory already has state —
// silently ignoring it could hide an operator pointing a seeded boot at
// the wrong directory. In-memory constructors ignore it.
func WithBootstrapData(points []Point, obstacles []Rect) Option {
	return func(c *config) { c.boot = &bootstrapData{points: points, obstacles: obstacles} }
}

// WithGroupCommit sets the WAL group-commit window for the durable
// constructors. Zero (the default) is strict durability: every mutation's
// log record is fsynced before the mutation publishes, so a recovered
// instance resumes at the exact pre-crash epoch. A positive window batches
// fsyncs: mutations publish immediately and the log tail reaches disk
// within one window, so a crash can lose up to the window's worth of the
// newest mutations — recovery still lands on a consistent earlier epoch,
// never a torn state. In-memory constructors ignore the option.
func WithGroupCommit(window time.Duration) Option {
	return func(c *config) { c.groupWindow = window }
}

// WithSyncAck makes every mutation ack — the public call returning, the
// HTTP endpoint responding — imply durability even under WithGroupCommit:
// the commit path fsyncs the WAL tail before the mutation publishes and
// returns. Without it, a group-commit handle acks up to one window ahead of
// the disk, so an acked mutation can vanish in a crash (the relaxed
// window documented in ARCHITECTURE.md). The cost profile is why the
// option exists separately from strict mode: per-mutation it is strict
// fsync, but a batched DB.Apply tick syncs its whole record group once, so
// the stream path keeps its amortization while acked ticks always survive
// recovery. In-memory constructors ignore the option.
func WithSyncAck() Option {
	return func(c *config) { c.syncAck = true }
}

// WithCheckpointEvery makes the durable tier write a checkpoint (and
// truncate the WAL) automatically after every n logged mutations, bounding
// both recovery replay time and log growth. Zero keeps the default
// (DefaultCheckpointEvery); negative disables automatic checkpoints, for
// callers driving Checkpoint explicitly. In-memory constructors ignore the
// option.
func WithCheckpointEvery(n int) Option {
	return func(c *config) { c.ckptEvery = n }
}

// DefaultCheckpointEvery is the automatic checkpoint interval (in logged
// mutations) when WithCheckpointEvery is not given.
const DefaultCheckpointEvery = 4096
