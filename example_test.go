package connquery_test

import (
	"context"
	"fmt"

	"connquery"
)

// The basic CONN workflow: open a database, execute a request, walk the
// answer intervals.
func ExampleOpen() {
	points := []connquery.Point{
		connquery.Pt(10, 40),
		connquery.Pt(90, 40),
	}
	obstacles := []connquery.Rect{
		connquery.R(45, 10, 55, 70), // wall between the two points
	}
	db, err := connquery.Open(points, obstacles)
	if err != nil {
		fmt.Println("open:", err)
		return
	}
	req := connquery.CONNRequest{Seg: connquery.Seg(connquery.Pt(0, 0), connquery.Pt(100, 0))}
	res, _, err := connquery.Run(context.Background(), db, req)
	if err != nil {
		fmt.Println("query:", err)
		return
	}
	for _, tup := range res.Tuples {
		fmt.Printf("t in [%.2f, %.2f]: point %d\n", tup.Span.Lo, tup.Span.Hi, tup.PID)
	}
	// Output:
	// t in [0.00, 0.50]: point 0
	// t in [0.50, 1.00]: point 1
}

// Exec is the untyped path: the Answer carries the payload, the metrics
// and the MVCC epoch the query ran against.
func ExampleDB_Exec() {
	db, err := connquery.Open(
		[]connquery.Point{connquery.Pt(0, 0)},
		[]connquery.Rect{connquery.R(-10, 4, 10, 6)}, // wall
	)
	if err != nil {
		fmt.Println("open:", err)
		return
	}
	ans, err := db.Exec(context.Background(),
		connquery.DistanceRequest{A: connquery.Pt(0, 0), B: connquery.Pt(0, 10)})
	if err != nil {
		fmt.Println("query:", err)
		return
	}
	// The shortest route rounds the wall's end: (0,0)->(10,4)->(10,6)->(0,10).
	fmt.Printf("epoch %d, obstructed %.1f\n", ans.Epoch(), ans.Distance())
	// Output:
	// epoch 1, obstructed 23.5
}

// Run is the generic, statically typed face of Exec: the answer's type is
// inferred from the request value (each request type implements
// TypedRequest for exactly one payload type), so call sites get *Result,
// []Neighbor, float64, ... without assertions. Exec returns the same data
// untyped inside an Answer; Run is Exec plus the assertion.
func ExampleRun() {
	db, err := connquery.Open(
		[]connquery.Point{connquery.Pt(10, 0), connquery.Pt(90, 0)},
		nil,
	)
	if err != nil {
		fmt.Println("open:", err)
		return
	}
	ctx := context.Background()
	q := connquery.Seg(connquery.Pt(0, 0), connquery.Pt(100, 0))

	// CONNRequest → *Result: res.Tuples without a type assertion.
	res, _, err := connquery.Run(ctx, db, connquery.CONNRequest{Seg: q})
	if err != nil {
		fmt.Println("conn:", err)
		return
	}
	fmt.Printf("%d tuples, split at %.2f\n", len(res.Tuples), res.SplitPoints()[0])

	// ONNRequest → []Neighbor from the same helper.
	nbrs, _, err := connquery.Run(ctx, db, connquery.ONNRequest{P: connquery.Pt(0, 0), K: 1})
	if err != nil {
		fmt.Println("onn:", err)
		return
	}
	fmt.Printf("nearest of (0,0): point %d at distance %.0f\n", nbrs[0].PID, nbrs[0].Dist)
	// Output:
	// 2 tuples, split at 0.50
	// nearest of (0,0): point 0 at distance 10
}

// Watch subscribes a request to the MVCC version chain: the first update
// carries the answer at the current version, then every committed
// mutation re-executes the request and delivers the revised answer with
// the sub-spans whose owner changed.
func ExampleDB_Watch() {
	db, err := connquery.Open(
		[]connquery.Point{connquery.Pt(10, 0), connquery.Pt(90, 0)},
		nil,
	)
	if err != nil {
		fmt.Println("open:", err)
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	q := connquery.Seg(connquery.Pt(0, 0), connquery.Pt(100, 0))
	updates, err := db.Watch(ctx, connquery.CONNRequest{Seg: q})
	if err != nil {
		fmt.Println("watch:", err)
		return
	}
	u := <-updates
	fmt.Printf("epoch %d: %d tuples\n", u.Epoch, len(u.Answer.Result().Tuples))

	// A new point in the middle wins the central stretch of the segment.
	if _, err := db.InsertPoint(connquery.Pt(40, 0)); err != nil {
		fmt.Println("insert:", err)
		return
	}
	u = <-updates
	spans := u.Delta.ChangedSpans
	fmt.Printf("epoch %d: %d tuples, owner changed on [%.2f, %.2f]\n",
		u.Epoch, len(u.Answer.Result().Tuples), spans[0].Lo, spans[0].Hi)
	// Output:
	// epoch 1: 2 tuples
	// epoch 2: 3 tuples, owner changed on [0.25, 0.65]
}

// Snapshot pins the current MVCC version so later queries can keep
// reading it — via AtSnapshot or AtVersion — no matter how far the live
// chain advances.
func ExampleDB_Snapshot() {
	db, err := connquery.Open(
		[]connquery.Point{connquery.Pt(10, 0), connquery.Pt(90, 0)},
		nil,
	)
	if err != nil {
		fmt.Println("open:", err)
		return
	}
	ctx := context.Background()
	q := connquery.Seg(connquery.Pt(0, 0), connquery.Pt(100, 0))

	snap := db.Snapshot()
	defer snap.Release()
	if _, err := db.InsertPoint(connquery.Pt(40, 0)); err != nil {
		fmt.Println("insert:", err)
		return
	}

	old, err := db.Exec(ctx, connquery.CONNRequest{Seg: q}, connquery.AtSnapshot(snap))
	if err != nil {
		fmt.Println("pinned:", err)
		return
	}
	live, err := db.Exec(ctx, connquery.CONNRequest{Seg: q})
	if err != nil {
		fmt.Println("live:", err)
		return
	}
	fmt.Printf("pinned epoch %d: %d tuples\n", old.Epoch(), len(old.Result().Tuples))
	fmt.Printf("live epoch %d: %d tuples\n", live.Epoch(), len(live.Result().Tuples))
	// Output:
	// pinned epoch 1: 2 tuples
	// live epoch 2: 3 tuples
}

// COkNN returns the k nearest points per interval.
func ExampleCOkNNRequest() {
	db, err := connquery.Open(
		[]connquery.Point{connquery.Pt(25, 10), connquery.Pt(75, 10), connquery.Pt(50, 30)},
		nil,
	)
	if err != nil {
		fmt.Println("open:", err)
		return
	}
	req := connquery.COkNNRequest{Seg: connquery.Seg(connquery.Pt(0, 0), connquery.Pt(100, 0)), K: 2}
	res, _, err := connquery.Run(context.Background(), db, req)
	if err != nil {
		fmt.Println("query:", err)
		return
	}
	for _, tup := range res.Tuples {
		ids := make([]int32, len(tup.Owners))
		for i, o := range tup.Owners {
			ids[i] = o.PID
		}
		fmt.Printf("t in [%.2f, %.2f]: points %v\n", tup.Span.Lo, tup.Span.Hi, ids)
	}
	// Around the middle both side points beat the distant central one, so
	// three distinct 2-NN sets appear along the segment.
	// Output:
	// t in [0.00, 0.47]: points [0 2]
	// t in [0.47, 0.54]: points [0 1]
	// t in [0.54, 1.00]: points [1 2]
}
