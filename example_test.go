package connquery_test

import (
	"context"
	"fmt"

	"connquery"
)

// The basic CONN workflow: open a database, execute a request, walk the
// answer intervals.
func ExampleOpen() {
	points := []connquery.Point{
		connquery.Pt(10, 40),
		connquery.Pt(90, 40),
	}
	obstacles := []connquery.Rect{
		connquery.R(45, 10, 55, 70), // wall between the two points
	}
	db, err := connquery.Open(points, obstacles)
	if err != nil {
		fmt.Println("open:", err)
		return
	}
	req := connquery.CONNRequest{Seg: connquery.Seg(connquery.Pt(0, 0), connquery.Pt(100, 0))}
	res, _, err := connquery.Run(context.Background(), db, req)
	if err != nil {
		fmt.Println("query:", err)
		return
	}
	for _, tup := range res.Tuples {
		fmt.Printf("t in [%.2f, %.2f]: point %d\n", tup.Span.Lo, tup.Span.Hi, tup.PID)
	}
	// Output:
	// t in [0.00, 0.50]: point 0
	// t in [0.50, 1.00]: point 1
}

// Exec is the untyped path: the Answer carries the payload, the metrics
// and the MVCC epoch the query ran against.
func ExampleDB_Exec() {
	db, err := connquery.Open(
		[]connquery.Point{connquery.Pt(0, 0)},
		[]connquery.Rect{connquery.R(-10, 4, 10, 6)}, // wall
	)
	if err != nil {
		fmt.Println("open:", err)
		return
	}
	ans, err := db.Exec(context.Background(),
		connquery.DistanceRequest{A: connquery.Pt(0, 0), B: connquery.Pt(0, 10)})
	if err != nil {
		fmt.Println("query:", err)
		return
	}
	// The shortest route rounds the wall's end: (0,0)->(10,4)->(10,6)->(0,10).
	fmt.Printf("epoch %d, obstructed %.1f\n", ans.Epoch(), ans.Distance())
	// Output:
	// epoch 1, obstructed 23.5
}

// COkNN returns the k nearest points per interval.
func ExampleCOkNNRequest() {
	db, err := connquery.Open(
		[]connquery.Point{connquery.Pt(25, 10), connquery.Pt(75, 10), connquery.Pt(50, 30)},
		nil,
	)
	if err != nil {
		fmt.Println("open:", err)
		return
	}
	req := connquery.COkNNRequest{Seg: connquery.Seg(connquery.Pt(0, 0), connquery.Pt(100, 0)), K: 2}
	res, _, err := connquery.Run(context.Background(), db, req)
	if err != nil {
		fmt.Println("query:", err)
		return
	}
	for _, tup := range res.Tuples {
		ids := make([]int32, len(tup.Owners))
		for i, o := range tup.Owners {
			ids[i] = o.PID
		}
		fmt.Printf("t in [%.2f, %.2f]: points %v\n", tup.Span.Lo, tup.Span.Hi, ids)
	}
	// Around the middle both side points beat the distant central one, so
	// three distinct 2-NN sets appear along the segment.
	// Output:
	// t in [0.00, 0.47]: points [0 2]
	// t in [0.47, 0.54]: points [0 1]
	// t in [0.54, 1.00]: points [1 2]
}
