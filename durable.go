package connquery

import (
	"errors"
	"fmt"
	"os"

	"connquery/internal/lru"
	"connquery/internal/stats"
	"connquery/internal/wal"
)

// The durable tier: a write-ahead log on the commit path plus a persistent
// epoch store (checkpoints of the full ID-preserving storage image), giving
// the MVCC engine crash recovery with a crisp contract — the paper's query
// answers are a pure function of (dataset, epoch), so a recovered instance
// must answer bit-identically at the recovered epoch, payload and
// NPE/NOE/|SVG|/Reach metrics included.
//
// Write path. Under the writer lock, every mutation appends one CRC-framed
// record to the WAL — and, in the default strict mode, fsyncs it — BEFORE
// publish() swaps the version pointer: nothing becomes visible to queries
// that recovery could not reproduce. WithGroupCommit relaxes the fsync into
// a batched background sync, trading a bounded tail of recent mutations for
// fleet-scale update throughput; the on-disk log is always a prefix of the
// committed stream, so recovery still lands on a consistent earlier epoch.
//
// Checkpoints. Checkpoint (and the automatic WithCheckpointEvery interval)
// syncs the log, atomically writes the current version's full storage image
// stamped with its epoch, and truncates the log. Recovery is therefore
// always one checkpoint load plus one sequential scan of a short log tail.
//
// Failure model is fail-stop: a WAL or checkpoint I/O error latches on the
// handle, the failed mutation does not publish, and every later mutation
// refuses (inserts return the latched error, deletes report false); reads
// keep serving the last published version.

// RecoveryStats reports what a durable open actually did, with the replay
// path's REAL file I/O counted through the same page-fault accounting the
// query engine uses (a page is pageSize bytes of checkpoint or WAL file;
// with WithBufferPages the recovery reads run through an LRU buffer and
// split into faults and hits).
type RecoveryStats struct {
	Epoch           uint64 // epoch the instance recovered to
	CheckpointBytes int64  // bytes of the checkpoint image read
	WALBytes        int64  // bytes of WAL segments scanned
	WALRecords      int    // records replayed through the mutation path
	TornBytes       int64  // trailing WAL bytes discarded as torn
	PagesRead       int64  // page faults charged for recovery file reads
	PageHits        int64  // recovery page reads absorbed by the LRU buffer
}

// durableState is a DB's attachment to its directory: the WAL writer, the
// checkpoint cadence, the recovery report, and the latched failure state.
// All fields are guarded by the owning DB's writer lock (db.mu).
type durableState struct {
	dir    string
	w      *wal.Writer
	since  int // records logged since the last checkpoint
	every  int // auto-checkpoint interval; 0 = manual only
	err    error
	closed bool
	rec    RecoveryStats
}

var errNotDurable = errors.New("connquery: not a durable database (use OpenDurable)")

func walOptions(cfg config) wal.Options {
	return wal.Options{SyncWindow: cfg.groupWindow}
}

func resolveCkptEvery(n int) int {
	if n == 0 {
		return DefaultCheckpointEvery
	}
	if n < 0 {
		return 0
	}
	return n
}

// recoveryCounter builds the page-fault accounting for a recovery pass.
func recoveryCounter(cfg config) *stats.PageCounter {
	pc := &stats.PageCounter{}
	if cfg.bufferPages > 0 {
		pc.Buffer = lru.New(cfg.bufferPages)
	}
	return pc
}

// OpenDurable opens (or creates) a durable database in dir.
//
// When dir holds durable state, the instance cold-starts from the latest
// checkpoint plus a WAL replay through the regular mutation path — so the
// R-trees, flat-geometry kernel and answer-affecting state rebuild exactly
// — and resumes at the recovered epoch. When dir is empty, the initial
// world must come from WithBootstrapData; it is built exactly as Open would
// build it (same validation, same IDs, epoch 1) and checkpointed before the
// call returns. All regular Options apply; WithGroupCommit and
// WithCheckpointEvery tune the durability itself. Close the handle to
// checkpoint and release the directory.
func OpenDurable(dir string, opts ...Option) (*DB, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("connquery: durable: %w", err)
	}
	pc := recoveryCounter(cfg)
	ck, ckBytes, err := loadLatestCheckpoint(dir, cfg.pageSize, pc.RecordAccess)
	if err != nil {
		return nil, fmt.Errorf("connquery: durable: %w", err)
	}
	every := resolveCkptEvery(cfg.ckptEvery)

	if ck == nil {
		if cfg.boot == nil {
			return nil, fmt.Errorf("connquery: durable: %s holds no durable state and no WithBootstrapData was given", dir)
		}
		db, err := Open(cfg.boot.points, cfg.boot.obstacles, opts...)
		if err != nil {
			return nil, err
		}
		if err := makeDurable(db, dir, cfg, every); err != nil {
			return nil, err
		}
		return db, nil
	}
	if cfg.boot != nil {
		return nil, fmt.Errorf("connquery: durable: WithBootstrapData given but %s already holds state at epoch %d", dir, ck.epoch)
	}

	db, err := openAt(ck, cfg)
	if err != nil {
		return nil, err
	}
	scan, err := wal.ScanDir(dir, cfg.pageSize, pc.RecordAccess)
	if err != nil {
		return nil, fmt.Errorf("connquery: durable: %w", err)
	}
	applied, err := replayRecords(db, scan.Records)
	if err != nil {
		return nil, err
	}
	rec := RecoveryStats{
		Epoch:           db.Version(),
		CheckpointBytes: ckBytes,
		WALBytes:        scan.Bytes,
		WALRecords:      len(applied),
		TornBytes:       scan.TornBytes,
		PagesRead:       pc.Faults(),
		PageHits:        pc.Accesses() - pc.Faults(),
	}
	if err := attachDurable(db, dir, cfg, every, applied, rec); err != nil {
		return nil, err
	}
	return db, nil
}

// makeDurable attaches a freshly built in-memory DB to an empty directory:
// initial checkpoint, clean log, live writer.
func makeDurable(db *DB, dir string, cfg config, every int) error {
	if err := writeCheckpointFile(dir, db.current()); err != nil {
		return err
	}
	return attachDurable(db, dir, cfg, every, nil, RecoveryStats{Epoch: db.Version()})
}

// attachDurable compacts the directory's log to exactly the records the DB
// replayed (dropping torn tails and anything beyond the recovered cut, so
// future scans start clean), opens the writer for the next epoch, and arms
// the durable state. From here on every mutation logs before it publishes.
func attachDurable(db *DB, dir string, cfg config, every int, applied []wal.Record, rec RecoveryStats) error {
	if err := wal.Rewrite(dir, applied); err != nil {
		return fmt.Errorf("connquery: durable: %w", err)
	}
	w, err := wal.Create(dir, db.Version()+1, walOptions(cfg))
	if err != nil {
		return fmt.Errorf("connquery: durable: %w", err)
	}
	db.dur = &durableState{dir: dir, w: w, since: len(applied), every: every, rec: rec}
	return nil
}

// replayRecords applies a scanned record stream to db through the public
// mutation path. Records at or below the current epoch are duplicates a
// crashed log compaction can leave behind and are skipped; an epoch gap or
// an application verdict that disagrees with the log (wrong ID, failed
// delete) is corruption and aborts the open — a durable store must never
// guess. Returns the records actually applied.
func replayRecords(db *DB, recs []wal.Record) ([]wal.Record, error) {
	applied := make([]wal.Record, 0, len(recs))
	for _, r := range recs {
		cur := db.Version()
		if r.Epoch <= cur {
			continue
		}
		if r.Epoch != cur+1 {
			return nil, fmt.Errorf("connquery: wal replay: epoch gap: log jumps from %d to %d", cur, r.Epoch)
		}
		if err := db.applyRecord(r); err != nil {
			return nil, err
		}
		applied = append(applied, r)
	}
	return applied, nil
}

// applyRecord replays one WAL record through the regular mutation path and
// cross-checks the outcome against what the log promised.
func (db *DB) applyRecord(r wal.Record) error {
	switch r.Op {
	case wal.OpInsertPoint:
		pid, err := db.InsertPoint(Pt(r.Coords[0], r.Coords[1]))
		if err != nil {
			return fmt.Errorf("connquery: wal replay: insert point: %w", err)
		}
		if pid != r.ID {
			return fmt.Errorf("connquery: wal replay: insert assigned PID %d, log recorded %d", pid, r.ID)
		}
	case wal.OpDeletePoint:
		if !db.DeletePoint(r.ID) {
			return fmt.Errorf("connquery: wal replay: delete of point %d failed", r.ID)
		}
	case wal.OpInsertObstacle:
		oid, err := db.InsertObstacle(Rect{MinX: r.Coords[0], MinY: r.Coords[1], MaxX: r.Coords[2], MaxY: r.Coords[3]})
		if err != nil {
			return fmt.Errorf("connquery: wal replay: insert obstacle: %w", err)
		}
		if oid != r.ID {
			return fmt.Errorf("connquery: wal replay: insert assigned OID %d, log recorded %d", oid, r.ID)
		}
	case wal.OpDeleteObstacle:
		if !db.DeleteObstacle(r.ID) {
			return fmt.Errorf("connquery: wal replay: delete of obstacle %d failed", r.ID)
		}
	default:
		return fmt.Errorf("connquery: wal replay: unknown op %d", r.Op)
	}
	if got := db.Version(); got != r.Epoch {
		return fmt.Errorf("connquery: wal replay: epoch %d after applying the record for epoch %d", got, r.Epoch)
	}
	return nil
}

// writableLocked is the mutation entry gate. Caller holds db.mu.
func (db *DB) writableLocked() error {
	d := db.dur
	if d == nil {
		return nil
	}
	if d.closed {
		return errors.New("connquery: durable database is closed")
	}
	return d.err
}

// logRecord appends one record for the mutation committing nv, honoring
// the sync policy. Caller holds db.mu; a failure latches. The record
// carries nv's epoch, so the log's epoch sequence mirrors the version
// chain exactly.
func (d *durableState) logRecord(epoch uint64, r wal.Record) error {
	r.Epoch = epoch
	if err := d.w.Append(r); err != nil {
		d.err = fmt.Errorf("connquery: durable: %w", err)
		return d.err
	}
	d.since++
	return nil
}

// logBatch appends one batched tick's record group as a single write (and,
// in strict mode, a single fsync): either every record in the group is
// logged or the writer latched and nothing publishes. The caller has
// already stamped consecutive epochs onto the records. Caller holds db.mu.
func (d *durableState) logBatch(recs []wal.Record) error {
	if err := d.w.AppendBatch(recs); err != nil {
		d.err = fmt.Errorf("connquery: durable: %w", err)
		return d.err
	}
	d.since += len(recs)
	return nil
}

// syncLocked forces the log tail to disk, latching on failure — the
// WithSyncAck half of a commit: a mutation acked to the caller is on disk.
// Caller holds db.mu.
func (d *durableState) syncLocked() error {
	if d.err != nil {
		return d.err
	}
	if err := d.w.Sync(); err != nil {
		d.err = fmt.Errorf("connquery: durable: %w", err)
		return d.err
	}
	return nil
}

// maybeCheckpointLocked runs the automatic checkpoint when the interval is
// armed and due. Caller holds db.mu; the published version is already
// live, so a checkpoint failure only latches the writer — readers are
// unaffected.
func (db *DB) maybeCheckpointLocked(v *version) {
	d := db.dur
	if d.every > 0 && d.since >= d.every && d.err == nil {
		db.checkpointLocked(v) //nolint:errcheck // latched in d.err
	}
}

// checkpointLocked makes v durable as a checkpoint and truncates the WAL:
// sync the log, write the image atomically, then cut the segments — in
// that order, so every crash window leaves either the old checkpoint plus
// a complete log, or the new checkpoint plus a log whose leftover records
// replay idempotently. Caller holds db.mu.
func (db *DB) checkpointLocked(v *version) error {
	d := db.dur
	if d.err != nil {
		return d.err
	}
	if err := d.w.Sync(); err != nil {
		d.err = fmt.Errorf("connquery: durable: %w", err)
		return d.err
	}
	if err := writeCheckpointFile(d.dir, v); err != nil {
		d.err = err
		return d.err
	}
	if err := d.w.Truncate(); err != nil {
		d.err = fmt.Errorf("connquery: durable: %w", err)
		return d.err
	}
	d.since = 0
	return nil
}

// syncWAL forces the handle's log tail to disk without checkpointing. The
// sharded checkpoint protocol uses it to pin every shard's log before the
// router image is written. No-op for in-memory handles.
func (db *DB) syncWAL() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	d := db.dur
	if d == nil {
		return nil
	}
	return d.syncLocked()
}

// Checkpoint writes a durable checkpoint of the current version and
// truncates the WAL. It serializes with mutations on the writer lock.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.dur == nil {
		return errNotDurable
	}
	if db.dur.closed {
		return errors.New("connquery: durable database is closed")
	}
	return db.checkpointLocked(db.current())
}

// Close checkpoints the current version and releases the durable
// directory. Closing an in-memory DB is a no-op, so callers can close a
// Database handle uniformly. Queries on the handle keep working after
// Close (they are pure reads of the published version); only mutations
// refuse.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	d := db.dur
	if d == nil || d.closed {
		return nil
	}
	d.closed = true
	var firstErr error
	if d.err == nil {
		firstErr = db.checkpointLocked(db.current())
	}
	if err := d.w.Close(); firstErr == nil && err != nil {
		firstErr = fmt.Errorf("connquery: durable: %w", err)
	}
	return firstErr
}

// RecoveryStats reports what this handle's durable open did. Zero for
// in-memory handles.
func (db *DB) RecoveryStats() RecoveryStats {
	if db.dur == nil {
		return RecoveryStats{}
	}
	return db.dur.rec
}
