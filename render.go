package connquery

import (
	"math"
	"strings"
)

// RenderScene draws the database's obstacles and points, a query segment,
// and optionally a CONN result onto a character grid, for terminal
// inspection and documentation. Obstacles render as '#', data points as
// their PID's last decimal digit, the query segment as '-' with 'S'/'E'
// endpoints, and split points as '|'. The viewport is the bounding box of
// everything drawn, padded 5%.
func (db *DB) RenderScene(q Segment, res *Result, width, height int) string {
	v := db.current()
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	// Viewport.
	box := q.Bounds()
	for pid, p := range v.points {
		if v.deletedPts[int32(pid)] {
			continue
		}
		box = box.ExpandPoint(p)
	}
	for oid, o := range v.obstacles {
		if v.deletedObs[int32(oid)] {
			continue
		}
		box = box.Union(o)
	}
	box = box.Buffer(math.Max(box.Width(), box.Height()) * 0.05)
	if box.Width() <= 0 || box.Height() <= 0 {
		box = box.Buffer(1)
	}

	grid := make([][]byte, height)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(" ", width))
	}
	toCell := func(p Point) (int, int) {
		cx := int((p.X - box.MinX) / box.Width() * float64(width-1))
		cy := int((box.MaxY - p.Y) / box.Height() * float64(height-1))
		return clampInt(cx, 0, width-1), clampInt(cy, 0, height-1)
	}

	// Obstacles.
	for oid, o := range v.obstacles {
		if v.deletedObs[int32(oid)] {
			continue
		}
		x0, y1 := toCell(Point{X: o.MinX, Y: o.MinY})
		x1, y0 := toCell(Point{X: o.MaxX, Y: o.MaxY})
		for y := y0; y <= y1; y++ {
			for x := x0; x <= x1; x++ {
				grid[y][x] = '#'
			}
		}
	}
	// Query segment.
	steps := 4 * width
	for i := 0; i <= steps; i++ {
		x, y := toCell(q.At(float64(i) / float64(steps)))
		if grid[y][x] == ' ' || grid[y][x] == '#' {
			grid[y][x] = '-'
		}
	}
	// Split points.
	if res != nil {
		for _, t := range res.SplitPoints() {
			x, y := toCell(q.At(t))
			grid[y][x] = '|'
		}
	}
	sx, sy := toCell(q.A)
	grid[sy][sx] = 'S'
	ex, ey := toCell(q.B)
	grid[ey][ex] = 'E'
	// Points (drawn last so they stay visible).
	for pid, p := range v.points {
		if v.deletedPts[int32(pid)] {
			continue
		}
		x, y := toCell(p)
		grid[y][x] = byte('0' + pid%10)
	}

	var b strings.Builder
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
