package connquery

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

func smallDB(t *testing.T, opts ...Option) *DB {
	t.Helper()
	points := []Point{Pt(10, 10), Pt(50, 50), Pt(90, 10), Pt(50, 90)}
	obstacles := []Rect{R(40, 20, 60, 40)}
	db, err := Open(points, obstacles, opts...)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return db
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(nil, nil); err == nil {
		t.Fatal("Open with no points succeeded")
	}
	if _, err := Open([]Point{Pt(1, 1)}, []Rect{{MinX: 5, MinY: 5, MaxX: 1, MaxY: 1}}); err == nil {
		t.Fatal("Open with malformed obstacle succeeded")
	}
	// Point strictly inside an obstacle.
	if _, err := Open([]Point{Pt(5, 5)}, []Rect{R(0, 0, 10, 10)}); err == nil {
		t.Fatal("Open with interior point succeeded")
	}
	// Boundary point is legal.
	if _, err := Open([]Point{Pt(0, 5)}, []Rect{R(0, 0, 10, 10)}); err != nil {
		t.Fatalf("Open with boundary point failed: %v", err)
	}
}

func TestQueryValidation(t *testing.T) {
	db := smallDB(t)
	if _, _, err := Run(context.Background(), db, CONNRequest{Seg: Seg(Pt(1, 1), Pt(1, 1))}); err == nil {
		t.Fatal("degenerate CONN accepted")
	}
	if _, _, err := Run(context.Background(), db, COkNNRequest{Seg: Seg(Pt(0, 0), Pt(1, 0)), K: 0}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, _, err := Run(context.Background(), db, ONNRequest{P: Pt(0, 0), K: 0}); err == nil {
		t.Fatal("ONN k=0 accepted")
	}
}

func TestCONNBasic(t *testing.T) {
	db := smallDB(t)
	q := Seg(Pt(0, 0), Pt(100, 0))
	res, m, err := Run(context.Background(), db, CONNRequest{Seg: q})
	if err != nil {
		t.Fatalf("CONN: %v", err)
	}
	if len(res.Tuples) < 2 {
		t.Fatalf("expected multiple tuples along q, got %+v", res.Tuples)
	}
	first, _ := res.OwnerAt(0)
	last, _ := res.OwnerAt(1)
	if first.PID != 0 || last.PID != 2 {
		t.Fatalf("owners: first=%d last=%d, want 0 and 2", first.PID, last.PID)
	}
	if m.NPE == 0 || m.CPU <= 0 {
		t.Fatalf("metrics not populated: %+v", m)
	}
}

func TestCOkNNBasic(t *testing.T) {
	db := smallDB(t)
	res, _, err := Run(context.Background(), db, COkNNRequest{Seg: Seg(Pt(0, 0), Pt(100, 0)), K: 2})
	if err != nil {
		t.Fatalf("COkNN: %v", err)
	}
	for _, tu := range res.Tuples {
		if len(tu.Owners) != 2 {
			t.Fatalf("owner set size %d, want 2: %+v", len(tu.Owners), tu)
		}
	}
}

func TestONNAndObstructedDist(t *testing.T) {
	db := smallDB(t)
	nbrs, _, err := Run(context.Background(), db, ONNRequest{P: Pt(50, 0), K: 1})
	if err != nil || len(nbrs) != 1 {
		t.Fatalf("ONN: %v %v", nbrs, err)
	}
	// (50,50) is straight above but blocked by the obstacle; its obstructed
	// distance must exceed the Euclidean 50.
	d := runDist(db, Pt(50, 0), Pt(50, 50))
	if d <= 50 {
		t.Fatalf("ObstructedDist through obstacle = %v, want > 50", d)
	}
	if got := runDist(db, Pt(1, 1), Pt(1, 1)); got != 0 {
		t.Fatalf("self distance = %v", got)
	}
	if got, want := runDist(db, Pt(0, 0), Pt(3, 4)), 5.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("free-space distance = %v, want %v", got, want)
	}
}

func TestNaiveCONNPublic(t *testing.T) {
	db := smallDB(t)
	q := Seg(Pt(0, 0), Pt(100, 0))
	exact, _, err := Run(context.Background(), db, CONNRequest{Seg: q})
	if err != nil {
		t.Fatal(err)
	}
	naive, _, err := Run(context.Background(), db, NaiveCONNRequest{Seg: q, Samples: 200})
	if err != nil {
		t.Fatalf("NaiveCONN: %v", err)
	}
	// Owners must agree away from split points.
	for k := 0; k <= 50; k++ {
		tt := float64(k) / 50
		a, _ := exact.OwnerAt(tt)
		b, _ := naive.OwnerAt(tt)
		nearSplit := false
		for _, s := range exact.SplitPoints() {
			if math.Abs(tt-s) < 0.02 {
				nearSplit = true
			}
		}
		if !nearSplit && a.PID != b.PID {
			t.Fatalf("t=%v: exact %d vs naive %d", tt, a.PID, b.PID)
		}
	}
	if _, _, err := Run(context.Background(), db, NaiveCONNRequest{Seg: Seg(Pt(0, 0), Pt(0, 0)), Samples: 10}); err == nil {
		t.Fatal("degenerate naive query accepted")
	}
}

func TestCNNIgnoresObstacles(t *testing.T) {
	db := smallDB(t)
	q := Seg(Pt(0, 60), Pt(100, 60))
	cnn, _, err := Run(context.Background(), db, CNNRequest{Seg: q})
	if err != nil {
		t.Fatalf("CNN: %v", err)
	}
	mid, _ := cnn.OwnerAt(0.5)
	if mid.PID != 1 {
		t.Fatalf("CNN middle owner = %d, want 1 (the (50,50) point)", mid.PID)
	}
}

func TestOneTreeOptionMatchesTwoTree(t *testing.T) {
	r := rand.New(rand.NewSource(401))
	points := make([]Point, 60)
	for i := range points {
		points[i] = Pt(r.Float64()*1000, r.Float64()*1000)
	}
	obstacles := make([]Rect, 12)
	for i := range obstacles {
		lo := Pt(r.Float64()*1000, r.Float64()*1000)
		obstacles[i] = R(lo.X, lo.Y, lo.X+40, lo.Y+40)
	}
	pts := points[:0]
	for _, p := range points {
		ok := true
		for _, o := range obstacles {
			if o.ContainsOpen(p) {
				ok = false
			}
		}
		if ok {
			pts = append(pts, p)
		}
	}
	two, err := Open(pts, obstacles)
	if err != nil {
		t.Fatal(err)
	}
	one, err := Open(pts, obstacles, WithOneTree())
	if err != nil {
		t.Fatal(err)
	}
	q := Seg(Pt(100, 500), Pt(900, 500))
	for _, o := range obstacles {
		if o.BlocksSegment(q) {
			t.Skip("fixture drifted: q crosses an obstacle")
		}
	}
	r2, _, _ := Run(context.Background(), two, CONNRequest{Seg: q})
	r1, _, _ := Run(context.Background(), one, CONNRequest{Seg: q})
	if len(r1.Tuples) != len(r2.Tuples) {
		t.Fatalf("1T %d tuples vs 2T %d", len(r1.Tuples), len(r2.Tuples))
	}
	for i := range r1.Tuples {
		if r1.Tuples[i].PID != r2.Tuples[i].PID {
			t.Fatalf("tuple %d owner mismatch: %d vs %d", i, r1.Tuples[i].PID, r2.Tuples[i].PID)
		}
	}
}

func TestBufferReducesFaults(t *testing.T) {
	r := rand.New(rand.NewSource(403))
	points := make([]Point, 3000)
	for i := range points {
		points[i] = Pt(r.Float64()*10000, r.Float64()*10000)
	}
	obstacles := make([]Rect, 300)
	for i := range obstacles {
		lo := Pt(r.Float64()*10000, r.Float64()*10000)
		obstacles[i] = R(lo.X, lo.Y, lo.X+30, lo.Y+30)
	}
	pts := points[:0]
	for _, p := range points {
		ok := true
		for _, o := range obstacles {
			if o.ContainsOpen(p) {
				ok = false
			}
		}
		if ok {
			pts = append(pts, p)
		}
	}
	cold, _ := Open(pts, obstacles)
	warm, _ := Open(pts, obstacles, WithBufferPages(256))
	q := Seg(Pt(2000, 5000), Pt(2450, 5000))

	// WithNoCache: the loop repeats one query to measure fresh per-run fault
	// metrics, which an answer-cache hit would replay instead of re-counting.
	var coldFaults, warmFaults int64
	for i := 0; i < 5; i++ {
		_, m, err := Run(context.Background(), cold, CONNRequest{Seg: q}, WithNoCache())
		if err != nil {
			t.Fatal(err)
		}
		coldFaults += m.Faults()
		_, m2, err := Run(context.Background(), warm, CONNRequest{Seg: q}, WithNoCache())
		if err != nil {
			t.Fatal(err)
		}
		warmFaults += m2.Faults()
	}
	if warmFaults >= coldFaults {
		t.Fatalf("buffer did not reduce faults: warm=%d cold=%d", warmFaults, coldFaults)
	}
	warm.ResetBufferStats() // must not panic and must keep working
	if _, _, err := Run(context.Background(), warm, CONNRequest{Seg: q}); err != nil {
		t.Fatal(err)
	}
}

func TestPointByID(t *testing.T) {
	db := smallDB(t)
	if p, ok := db.PointByID(1); !ok || p != Pt(50, 50) {
		t.Fatalf("PointByID(1) = %v %v", p, ok)
	}
	if _, ok := db.PointByID(-1); ok {
		t.Fatal("PointByID(-1) succeeded")
	}
	if _, ok := db.PointByID(100); ok {
		t.Fatal("PointByID out of range succeeded")
	}
	if db.NumPoints() != 4 || db.NumObstacles() != 1 {
		t.Fatalf("sizes: %d points %d obstacles", db.NumPoints(), db.NumObstacles())
	}
}

func TestTuningOptionsProduceSameAnswers(t *testing.T) {
	points := []Point{Pt(10, 10), Pt(90, 15), Pt(45, 80), Pt(70, 60)}
	obstacles := []Rect{R(30, 20, 50, 35), R(60, 40, 75, 55)}
	q := Seg(Pt(0, 5), Pt(100, 5))
	base, err := Open(points, obstacles)
	if err != nil {
		t.Fatal(err)
	}
	want, _, _ := Run(context.Background(), base, CONNRequest{Seg: q})
	for _, tun := range []Tuning{
		{DisableLemma1: true},
		{DisableLemma7: true},
		{UseBisectionSolver: true},
		{DisableVGReuse: true},
	} {
		db, err := Open(points, obstacles, WithTuning(tun))
		if err != nil {
			t.Fatal(err)
		}
		got, _, _ := Run(context.Background(), db, CONNRequest{Seg: q})
		if len(got.Tuples) != len(want.Tuples) {
			t.Fatalf("tuning %+v changed the answer: %+v vs %+v", tun, got.Tuples, want.Tuples)
		}
		for i := range got.Tuples {
			if got.Tuples[i].PID != want.Tuples[i].PID {
				t.Fatalf("tuning %+v tuple %d: %d vs %d", tun, i, got.Tuples[i].PID, want.Tuples[i].PID)
			}
		}
	}
}
