package connquery

// The sharded differential harness: a ShardedDB and a single-node DB (the
// "twin") receive the identical randomized operation sequence — all 13
// request kinds interleaved with point/obstacle insertions and deletions,
// cache-hitting re-issues, snapshot-pinned and AtVersion reads — and every
// single sharded answer must be bit-identical to the twin's: same payload,
// same epoch/revision, and the same machine-independent metrics
// (NPE/NOE/|SVG|/Reach). Mutations must agree on assigned IDs and error
// outcomes. CPU time and page-fault counts are deliberately excluded: wall
// clock is nondeterministic, and faults depend on buffer state that routing
// legitimately alters; the paper-level cost observables are the evaluated
// object counts and the VG size, which the harness pins exactly.
//
// The harness runs at two shard-map configurations: 1 shard (the router
// must be a transparent wrapper) and 4 shards in a 2x2 grid (real
// scatter-gather with border crossings and mirror maintenance).

import (
	"context"
	"errors"
	"testing"
	"time"
)

// twinWorld drives one ShardedDB and its single-node twin in lockstep. The
// lockstep mutation/exec/compare machinery lives in twinHarness
// (helpers_test.go); this wrapper keeps the concretely-typed handles the
// sharded assertions need (ShardStats, typed snapshots).
type twinWorld struct {
	*twinHarness
	single  *DB
	sharded *ShardedDB
}

func newTwinWorld(t *testing.T, seed int64, shards int) *twinWorld {
	t.Helper()
	// Reuse the cache harness's world builder for the initial dataset, then
	// open the sharded twin over the identical inputs.
	w := newDiffWorkload(t, seed)
	pts := w.db.Points()
	obs := w.db.Obstacles()
	sdb, err := OpenSharded(pts, obs, shards, WithAnswerCache(8<<20))
	if err != nil {
		t.Fatal(err)
	}
	return &twinWorld{twinHarness: newTwinHarness(w, sdb, w.db), single: w.db, sharded: sdb}
}

func runShardedDifferential(t *testing.T, seed int64, shards, ops int) {
	tw := newTwinWorld(t, seed, shards)
	w := tw.gen

	var snap1 *Snapshot
	var snap2 *ShardedSnapshot
	for i := 0; i < ops; i++ {
		if t.Failed() {
			t.FailNow() // harness errors are non-fatal; stop before they cascade
		}
		roll := w.rng.Float64()
		switch {
		case roll < 0.15:
			tw.mutate(t)
		case roll < 0.17:
			// Rotate pins, taken quiesced so both hold the same cut.
			if snap1 != nil {
				snap1.Release()
				snap2.Release()
			}
			snap1, snap2 = tw.single.Snapshot(), tw.sharded.Snapshot()
			if snap1.Epoch() != snap2.Epoch() {
				t.Fatalf("pinned cut skew: single %d, sharded %d", snap1.Epoch(), snap2.Epoch())
			}
		case roll < 0.22 && snap1 != nil && !snap1.Released():
			// Snapshot-pinned reads at a (usually old) cut.
			req := w.request()
			tw.exec(t, req, []QueryOption{snap2.At()}, []QueryOption{AtSnapshot(snap1)})
		case roll < 0.25 && snap1 != nil && !snap1.Released():
			// AtVersion resolution through the pin registries.
			req := w.request()
			ep := snap1.Epoch()
			tw.exec(t, req, []QueryOption{AtVersion(ep)}, []QueryOption{AtVersion(ep)})
		default:
			req := w.request()
			tw.exec(t, req, nil, nil)
		}
	}

	st := tw.sharded.ShardStats()
	t.Logf("shard stats after %d ops: %+v", ops, st)
	t.Logf("sharded cache stats: %+v", tw.sharded.CacheStats())
	if st.RouterExecs == 0 {
		t.Fatal("harness executed nothing through the router")
	}
	if shards > 1 && st.ShardExecs >= st.BroadcastCost {
		t.Fatalf("no routing benefit: shard execs %d >= broadcast cost %d", st.ShardExecs, st.BroadcastCost)
	}
	if shards > 1 && st.DirectExecs == 0 {
		t.Fatal("no request was ever routed to a single shard")
	}
}

// TestShardedDifferentialOneShard proves OpenSharded(..., 1) is a fully
// transparent wrapper of Open: identical IDs, epochs, payloads and metrics.
func TestShardedDifferentialOneShard(t *testing.T) {
	runShardedDifferential(t, 11, 1, 1500)
}

// TestShardedDifferentialGrid is the real scatter-gather configuration: a
// 2x2 grid with border-crossing queries, union mirrors and pinned unions.
func TestShardedDifferentialGrid(t *testing.T) {
	runShardedDifferential(t, 12, 4, 1500)
}

// TestShardedCacheHitPaths re-issues a fixed request set across mutations on
// both twins so sharded answers are served from shard/mirror caches (fresh,
// hit, and promoted) and checks each against the twin — plus a final pass
// that verifies the sharded tier actually produced cache hits.
func TestShardedCacheHitPaths(t *testing.T) {
	tw := newTwinWorld(t, 13, 4)
	w := tw.gen
	reqs := make([]Request, 24)
	for i := range reqs {
		reqs[i] = w.newRequest()
	}
	for round := 0; round < 12; round++ {
		if t.Failed() {
			t.FailNow()
		}
		for _, req := range reqs {
			tw.exec(t, req, nil, nil)
		}
		for k := 0; k < 3; k++ {
			tw.mutate(t)
		}
	}
	st := tw.sharded.CacheStats()
	if st.Hits == 0 {
		t.Fatalf("sharded cache never hit: %+v", st)
	}
	t.Logf("sharded cache stats: %+v", st)
}

// TestShardedSnapshotErrors pins down the sharded error surface: foreign and
// released handles, nil snapshots, and unpinned AtVersion resolution.
func TestShardedSnapshotErrors(t *testing.T) {
	ctx := context.Background()
	tw := newTwinWorld(t, 14, 4)
	req := CONNRequest{Seg: Seg(Pt(10, 10), Pt(30, 30))}

	if _, err := tw.sharded.Exec(ctx, nil); !errors.Is(err, ErrNilRequest) {
		t.Fatalf("nil request: %v", err)
	}
	if _, err := tw.sharded.Exec(ctx, req, AtSnapshot(nil)); err == nil || err.Error() != "connquery: AtSnapshot(nil)" {
		t.Fatalf("AtSnapshot(nil): %v", err)
	}
	// A plain Snapshot belongs to a DB handle, never to the router.
	if _, err := tw.sharded.Exec(ctx, req, AtSnapshot(tw.single.Snapshot())); !errors.Is(err, ErrForeignSnapshot) {
		t.Fatalf("foreign single-node snapshot: %v", err)
	}
	// A ShardedSnapshot of another router is foreign too.
	other, err := OpenSharded([]Point{Pt(1, 1)}, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tw.sharded.Exec(ctx, req, other.Snapshot().At()); !errors.Is(err, ErrForeignSnapshot) {
		t.Fatalf("foreign sharded snapshot: %v", err)
	}
	// And a ShardedSnapshot is foreign to a plain DB. Release it right away:
	// a lingering pin on this revision would keep AtVersion resolving below.
	stray := tw.sharded.Snapshot()
	if _, err := tw.single.Exec(ctx, req, stray.At()); !errors.Is(err, ErrForeignSnapshot) {
		t.Fatalf("sharded snapshot on single-node DB: %v", err)
	}
	stray.Release()

	sp := tw.sharded.Snapshot()
	oldRev := sp.Epoch()
	if _, err := tw.sharded.InsertPoint(Pt(50, 50)); err != nil {
		t.Fatal(err)
	}
	if _, err := tw.sharded.Exec(ctx, req, AtVersion(oldRev)); err != nil {
		t.Fatalf("AtVersion while pinned: %v", err)
	}
	if _, err := tw.sharded.Exec(ctx, req, sp.At()); err != nil {
		t.Fatalf("pinned exec: %v", err)
	}
	sp.Release()
	if !sp.Released() {
		t.Fatal("Released() false after Release")
	}
	if _, err := tw.sharded.Exec(ctx, req, sp.At()); !errors.Is(err, ErrSnapshotReleased) {
		t.Fatalf("released pin: %v", err)
	}
	if _, err := tw.sharded.Exec(ctx, req, AtVersion(oldRev)); !errors.Is(err, ErrVersionNotPinned) {
		t.Fatalf("AtVersion after release: %v", err)
	}
	if _, err := tw.sharded.Watch(ctx, req, AtVersion(tw.sharded.Version())); !errors.Is(err, ErrPinnedWatch) {
		t.Fatalf("pinned watch: %v", err)
	}
}

// TestShardedWatchDifferential subscribes the same request on both twins,
// drives mutations, and checks the sharded delivery stream: revisions
// strictly increase, every delivered answer equals the twin's answer at that
// revision, and region-filtered wake-ups only ever *skip* deliveries (the
// sharded count never exceeds the twin's, and the final answers agree).
func TestShardedWatchDifferential(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tw := newTwinWorld(t, 15, 4)
	req := CONNRequest{Seg: Seg(Pt(20, 20), Pt(80, 80))}

	chS, err := tw.single.Watch(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	chR, err := tw.sharded.Watch(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	// Initial delivery from both.
	first := <-chR
	if first.Err != nil || !first.Delta.Changed {
		t.Fatalf("bad first sharded update: %+v", first)
	}
	firstS := <-chS
	checkTwinAnswers(t, req, first.Answer, firstS.Answer)

	singleCount, shardedCount := 1, 1
	lastSharded := first.Answer
	prevRev := first.Epoch
	for i := 0; i < 40; i++ {
		tw.mutate(t)
		// Quiesce: wait for the twin's delivery for this commit (the twin
		// wakes on every commit), then drain whatever the sharded watch chose
		// to deliver.
		for u := range chS {
			singleCount++
			if u.Err != nil {
				t.Fatalf("single watch error: %v", u.Err)
			}
			if u.Epoch == tw.single.Version() {
				break
			}
		}
		take := func(u Update) {
			shardedCount++
			if u.Err != nil {
				t.Fatalf("sharded watch error: %v", u.Err)
			}
			if u.Epoch <= prevRev {
				t.Fatalf("sharded watch revs not increasing: %d after %d", u.Epoch, prevRev)
			}
			prevRev = u.Epoch
			lastSharded = u.Answer
		}
	drain:
		for {
			select {
			case u := <-chR:
				take(u)
			default:
				break drain
			}
		}
		// The watcher's last answer must be payload-identical to the current
		// ground truth. If it is not yet, the mutation changed the answer, so
		// it must have intersected the watch region, so a delivery is
		// guaranteed to be in flight — block for it.
		want, err := tw.single.Exec(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		for !answersEqual(lastSharded.Value(), want.Value()) {
			select {
			case u := <-chR:
				take(u)
			case <-time.After(10 * time.Second):
				t.Fatalf("after mutation %d: sharded watch answer (rev %d) differs from live truth (rev %d) and no delivery arrived",
					i, lastSharded.Epoch(), want.Epoch())
			}
		}
	}
	if shardedCount > singleCount {
		t.Fatalf("sharded watch delivered more than the twin: %d > %d", shardedCount, singleCount)
	}
	t.Logf("deliveries: single %d, sharded %d", singleCount, shardedCount)
}

// TestShardedWatchSkipsFarMutations pins the fan-out invariant directly: a
// watcher over geometry deep inside one cell must not be woken (or
// re-delivered) by mutations in a far corner of the world that lie outside
// its answer's impact region.
func TestShardedWatchSkipsFarMutations(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// A dense local cluster keeps the watched query's reach tiny.
	pts := []Point{
		Pt(10, 10), Pt(11, 10), Pt(10, 11), Pt(12, 12), Pt(11, 12),
		Pt(90, 90), Pt(95, 95), Pt(90, 95), Pt(95, 90),
	}
	sdb, err := OpenSharded(pts, nil, 4, WithAnswerCache(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	req := CONNRequest{Seg: Seg(Pt(10, 10), Pt(12, 12))}
	ch, err := sdb.Watch(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	first := <-ch
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	// Mutations in the far corner: outside the watcher's widened region.
	for i := 0; i < 5; i++ {
		if _, err := sdb.InsertPoint(Pt(97+float64(i)/10, 97)); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case u := <-ch:
		t.Fatalf("far mutations woke the watcher: %+v", u)
	default:
	}
	// A mutation inside the region must still get through.
	if _, err := sdb.InsertPoint(Pt(10.5, 10.5)); err != nil {
		t.Fatal(err)
	}
	u := <-ch
	if u.Err != nil {
		t.Fatal(u.Err)
	}
	if u.Epoch != sdb.Version() {
		t.Fatalf("near mutation delivered rev %d, want %d", u.Epoch, sdb.Version())
	}
}
