package connquery

import (
	"math"

	"connquery/internal/flatgeom"
	"connquery/internal/geom"
	"connquery/internal/planner"
)

// This file is the execution planner's attachment to DB.Exec: in-flight
// requests are grouped by an (epoch, quantized region) key derived from the
// request's query geometry (the same base box that seeds the answer cache's
// impact-region math), and each group with real concurrency shares one
// region-scoped sight-line certificate table built over the version's
// flat-geometry kernel. Members run their visibility-graph/Dijkstra/CPLC
// phases against it; anything the shared region does not cover falls back
// to the private geometric path per pair, so answers — payload, epoch and
// the NPE/NOE/|SVG|/Reach metrics — are bit-identical with the planner on
// or off. See internal/planner for the grouping policy and ARCHITECTURE.md
// ("Execution planner") for the invariant argument.

const (
	// plannerMaxGroups bounds the retained admission groups per handle;
	// epoch churn under mutation constantly retires keys, so this is a
	// memory cap, not a tuning knob.
	plannerMaxGroups = 256
	// plannerMaxCorners caps a shared region table's corner count, matching
	// the kernel's own full-table gate: beyond it the quadratic build costs
	// more than a storm amortizes.
	plannerMaxCorners = 600
	// plannerGridDiv and plannerMaxDiv clamp the quantization grid relative
	// to the world's obstacle bounding box: cells are at least world/32 (so
	// nearby point queries share a group) and at most world/4 (larger
	// requests run privately).
	plannerGridDiv = 32.0
	plannerMaxDiv  = 4.0
)

// PlannerStats reports the execution planner's cumulative counters for one
// handle (see WithPlanner): how many shared-table groups formed, how many
// executions adopted a shared table, how many consulted the planner but ran
// the private path, and the build time spent vs. saved. A sharded database
// aggregates the planners of every shard unit and union mirror.
type PlannerStats struct {
	// GroupsFormed counts shared tables built (a group forms only when at
	// least two requests were in flight on the same (epoch, region) key).
	GroupsFormed uint64 `json:"groups_formed"`
	// Adoptions counts executions that reused a table another one built.
	Adoptions uint64 `json:"adoptions"`
	// Fallbacks counts executions that consulted the planner but ran
	// privately (no concurrent partner, ungroupable request, declined
	// build, or cancellation while waiting).
	Fallbacks uint64 `json:"fallbacks"`
	// BuildNs is the total wall time spent building shared tables.
	BuildNs int64 `json:"build_ns"`
	// SavedNs estimates the build work adoptions avoided: each adoption
	// credits the build time of the table it reused.
	SavedNs int64 `json:"saved_ns"`
}

// PlannerStats returns the handle's planner counters; the zero value when
// the planner is disabled (WithNoPlanner).
func (db *DB) PlannerStats() PlannerStats {
	if db.planner == nil {
		return PlannerStats{}
	}
	s := db.planner.Stats()
	return PlannerStats{
		GroupsFormed: s.GroupsFormed,
		Adoptions:    s.Adoptions,
		Fallbacks:    s.Fallbacks,
		BuildNs:      s.BuildNs,
		SavedNs:      s.SavedNs,
	}
}

// addPlannerStats folds one handle's counters into an aggregate.
func addPlannerStats(agg *PlannerStats, st PlannerStats) {
	agg.GroupsFormed += st.GroupsFormed
	agg.Adoptions += st.Adoptions
	agg.Fallbacks += st.Fallbacks
	agg.BuildNs += st.BuildNs
	agg.SavedNs += st.SavedNs
}

// admitPlanner consults the planner for req at version v and returns the
// group ticket, or nil when the planner is off or cannot apply: worlds
// small enough for the kernel's full corner table already share every
// sight-line certificate globally, so the planner only engages where that
// table is gated off.
func (db *DB) admitPlanner(req Request, v *version) *planner.Ticket {
	p := db.planner
	if p == nil {
		return nil
	}
	k := v.eng.Kernel
	if k == nil || k.Corners() != nil {
		return nil
	}
	w := k.Bounds()
	side := math.Max(w.MaxX-w.MinX, w.MaxY-w.MinY)
	if !(side > 0) {
		return nil
	}
	return p.Admit(v.epoch, requestBaseBox(req), side/plannerGridDiv, side/plannerMaxDiv)
}

// plannerBuild returns the builder closure handed to the admission group:
// one region-scoped certificate table over v's kernel, full-set blocker
// lists, declined when the region is too dense to amortize.
func plannerBuild(v *version) func(region geom.Rect) *flatgeom.CornerTable {
	return func(region geom.Rect) *flatgeom.CornerTable {
		return v.eng.Kernel.RegionTable(region, plannerMaxCorners)
	}
}
