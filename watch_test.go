package connquery

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestWatchBasic drives a watch through a deterministic mutation sequence
// and checks the delivery contract: an initial answer, one re-execution per
// (non-coalesced) publish, correct epochs and deltas, channel closed on
// cancel.
func TestWatchBasic(t *testing.T) {
	db := smallDB(t)
	q := Seg(Pt(0, 0), Pt(100, 0))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ch, err := db.Watch(ctx, CONNRequest{Seg: q})
	if err != nil {
		t.Fatal(err)
	}
	first := <-ch
	if first.Err != nil || first.Epoch != 1 || !first.Delta.Changed {
		t.Fatalf("first update: %+v", first)
	}
	want, _, _ := Run(ctx, db, CONNRequest{Seg: q}, AtVersion(1))
	if !resultsEqual(first.Answer.Result(), want) {
		t.Fatalf("initial watch answer differs from Exec")
	}

	// A mutation that changes the answer mid-segment.
	pid, err := db.InsertPoint(Pt(50, 1))
	if err != nil {
		t.Fatal(err)
	}
	u := <-ch
	if u.Err != nil || u.Epoch != 2 {
		t.Fatalf("update after insert: %+v", u)
	}
	if own, _ := u.Answer.Result().OwnerAt(0.5); own.PID != pid {
		t.Fatalf("watched answer missed the insert: %+v", u.Answer.Result().Tuples)
	}
	if !u.Delta.Changed || len(u.Delta.ChangedSpans) == 0 {
		t.Fatalf("delta missing: %+v", u.Delta)
	}
	for _, sp := range u.Delta.ChangedSpans {
		if !sp.Contains(0.5) && sp.Hi < 0.5 && sp.Lo > 0.5 {
			t.Fatalf("changed span misses the takeover point: %+v", u.Delta.ChangedSpans)
		}
	}

	// A mutation far away: the change box misses the answer's impact region,
	// so the wake is filtered and nothing is delivered (the answer is
	// provably unchanged — see TestWatchSkipsFarMutations for the focused
	// regression).
	if _, err := db.InsertObstacle(R(900, 900, 950, 950)); err != nil {
		t.Fatal(err)
	}
	select {
	case u = <-ch:
		t.Fatalf("remote mutation delivered an update: %+v", u)
	case <-time.After(50 * time.Millisecond):
	}
	if st := db.WatchStats(); st.Skipped == 0 {
		t.Fatalf("remote mutation was not counted as skipped: %+v", st)
	}

	// A near mutation still gets through, at the then-current epoch.
	if _, err := db.InsertPoint(Pt(60, 2)); err != nil {
		t.Fatal(err)
	}
	u = <-ch
	if u.Err != nil || u.Epoch != 4 {
		t.Fatalf("update after near insert: %+v", u)
	}
	if !u.Delta.Changed {
		t.Fatalf("near insert flagged no change: %+v", u.Delta)
	}

	cancel()
	for range ch { // drain until close
	}

	// Option and request validation.
	if _, err := db.Watch(context.Background(), nil); !errors.Is(err, ErrNilRequest) {
		t.Fatalf("nil request: %v", err)
	}
	if _, err := db.Watch(context.Background(), CONNRequest{Seg: q}, AtVersion(1)); !errors.Is(err, ErrPinnedWatch) {
		t.Fatalf("pinned watch: %v", err)
	}
	if _, err := db.Watch(context.Background(), CONNRequest{Seg: Seg(Pt(1, 1), Pt(1, 1))}); err == nil {
		t.Fatal("degenerate watched request accepted")
	}
}

// TestWatchSkipsFarMutations is the single-node wake-filter regression (the
// twin of TestShardedWatchSkipsFarMutations): commits whose change box
// misses the watcher's widened impact region deliver nothing, commits
// inside it still get through at the then-current epoch, and the skip
// counter proves the filter actually fired.
func TestWatchSkipsFarMutations(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// A dense local cluster keeps the watched query's reach tiny.
	pts := []Point{
		Pt(10, 10), Pt(11, 10), Pt(10, 11), Pt(12, 12), Pt(11, 12),
		Pt(90, 90), Pt(95, 95), Pt(90, 95), Pt(95, 90),
	}
	db, err := Open(pts, nil, WithAnswerCache(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	req := CONNRequest{Seg: Seg(Pt(10, 10), Pt(12, 12))}
	ch, err := db.Watch(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	first := <-ch
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	// Mutations in the far corner: outside the watcher's widened region.
	for i := 0; i < 5; i++ {
		if _, err := db.InsertPoint(Pt(97+float64(i)/10, 97)); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case u := <-ch:
		t.Fatalf("far mutations woke the watcher: %+v", u)
	default:
	}
	if st := db.WatchStats(); st.Skipped < 5 {
		t.Fatalf("expected >= 5 skipped wakes, got %+v", st)
	}
	// A mutation inside the region must still get through.
	if _, err := db.InsertPoint(Pt(10.5, 10.5)); err != nil {
		t.Fatal(err)
	}
	u := <-ch
	if u.Err != nil {
		t.Fatal(u.Err)
	}
	if u.Epoch != db.Version() {
		t.Fatalf("near mutation delivered epoch %d, want %d", u.Epoch, db.Version())
	}
}

// TestWatchRegionShiftLiveness is the single-node twin of
// TestShardedWatchRegionShiftLiveness: when a delivered answer's region
// collapses around a near point and the next commits first widen (delete)
// then land outside the still-installed collapsed region (insert), only the
// post-delivery epoch re-check keeps the watcher live. A missed wake parks
// it forever and trips the converge deadline.
func TestWatchRegionShiftLiveness(t *testing.T) {
	pts := []Point{
		Pt(0, 0), Pt(100, 100), Pt(100, 0), Pt(0, 100),
		Pt(25, 25), Pt(75, 25), Pt(25, 75), Pt(75, 75),
	}
	db, err := Open(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch, err := db.Watch(ctx, ONNRequest{P: Pt(20, 20), K: 1})
	if err != nil {
		t.Fatal(err)
	}

	// converge drains updates until the payload matches want; a missed wake
	// leaves the watcher asleep forever and trips the deadline instead.
	converge := func(round int, want *Answer) {
		t.Helper()
		deadline := time.After(10 * time.Second)
		for {
			select {
			case u, ok := <-ch:
				if !ok || u.Err != nil {
					t.Fatalf("round %d: watch died: %+v", round, u.Err)
				}
				if u.Epoch != u.Answer.Epoch() {
					t.Fatalf("round %d: update stamped %d, answer stamped %d", round, u.Epoch, u.Answer.Epoch())
				}
				if answersEqual(u.Answer.Value(), want.Value()) {
					return
				}
			case <-deadline:
				t.Fatalf("round %d: watch never converged to the live answer (missed wake?)", round)
			}
		}
	}

	for round := 0; round < 20; round++ {
		// A point almost on the query: the answer's wake region collapses
		// around it. Converge so the collapsed region is installed.
		near, err := db.InsertPoint(Pt(20.5, 20))
		if err != nil {
			t.Fatal(err)
		}
		wantNear, err := db.Exec(ctx, ONNRequest{P: Pt(20, 20), K: 1})
		if err != nil {
			t.Fatal(err)
		}
		converge(round, wantNear)

		// Delete it: the wake fires, the watcher re-executes the baseline
		// answer and then blocks delivering it — with the collapsed region
		// still installed, because the new one is only set after delivery.
		// The sleep parks it there; the insert at distance ~2.8 then commits
		// outside the installed region, so it queues no wake of its own and
		// only the post-delivery epoch re-check can pick it up.
		db.DeletePoint(near)
		time.Sleep(5 * time.Millisecond)
		mid, err := db.InsertPoint(Pt(22, 22))
		if err != nil {
			t.Fatal(err)
		}
		want, err := db.Exec(ctx, ONNRequest{P: Pt(20, 20), K: 1})
		if err != nil {
			t.Fatal(err)
		}
		converge(round, want)
		db.DeletePoint(mid)
	}
}

// TestWatchUnderMutationRace is the satellite guarantee, run under -race in
// CI: a live writer mutates while a watcher follows; delivered epochs must
// be strictly increasing and every delivered answer bit-identical to a
// fresh Exec pinned to that same epoch.
func TestWatchUnderMutationRace(t *testing.T) {
	r := rand.New(rand.NewSource(4711))
	points := make([]Point, 0, 120)
	obstacles := make([]Rect, 0, 20)
	for i := 0; i < 20; i++ {
		lo := Pt(r.Float64()*900, r.Float64()*900)
		obstacles = append(obstacles, R(lo.X, lo.Y, lo.X+10+r.Float64()*30, lo.Y+8+r.Float64()*20))
	}
free:
	for len(points) < 120 {
		p := Pt(r.Float64()*1000, r.Float64()*1000)
		for _, o := range obstacles {
			if o.ContainsOpen(p) {
				continue free
			}
		}
		points = append(points, p)
	}
	db, err := Open(points, obstacles)
	if err != nil {
		t.Fatal(err)
	}
	q := Seg(Pt(100, 480), Pt(800, 520))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Pin every epoch the writer will create, so each watched answer can be
	// re-derived later at exactly its version.
	snaps := map[uint64]*Snapshot{1: db.Snapshot()}
	var snapMu sync.Mutex

	ch, err := db.Watch(ctx, CONNRequest{Seg: q})
	if err != nil {
		t.Fatal(err)
	}

	var upMu sync.Mutex
	var updates []Update
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for u := range ch {
			upMu.Lock()
			updates = append(updates, u)
			upMu.Unlock()
		}
	}()

	const mutations = 60
	wr := rand.New(rand.NewSource(4712))
	for i := 0; i < mutations; i++ {
		switch wr.Intn(4) {
		case 0:
			db.InsertPoint(Pt(wr.Float64()*1000, wr.Float64()*1000))
		case 1:
			lo := Pt(wr.Float64()*950, wr.Float64()*950)
			db.InsertObstacle(R(lo.X, lo.Y, lo.X+5+wr.Float64()*25, lo.Y+5+wr.Float64()*15))
		case 2:
			db.DeletePoint(int32(wr.Intn(200)))
		case 3:
			db.DeleteObstacle(int32(wr.Intn(40)))
		}
		// The single writer snapshots after each mutation, so every epoch in
		// the chain stays pinned-alive for the verification pass.
		s := db.Snapshot()
		snapMu.Lock()
		snaps[s.Epoch()] = s
		snapMu.Unlock()
	}

	// Wait until the watcher's latest delivered answer equals a fresh Exec
	// at the final epoch. Bursts coalesce and the wake filter suppresses
	// commits that provably leave the answer unchanged, so the watcher need
	// not deliver *at* the final epoch — but its last delivery must be
	// bit-identical to the live truth.
	truth, _, err := Run(context.Background(), db, CONNRequest{Seg: q})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(60 * time.Second)
	for {
		upMu.Lock()
		n := len(updates)
		var last *Result
		if n > 0 && updates[n-1].Answer != nil {
			last = updates[n-1].Answer.Result()
		}
		upMu.Unlock()
		if last != nil && resultsEqual(last, truth) {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("watcher never converged on the live answer (%d updates)", n)
		case <-time.After(5 * time.Millisecond):
		}
	}
	cancel()
	<-collected

	// Verify: strictly increasing epochs, every answer bit-identical to a
	// fresh Exec pinned at that epoch.
	if len(updates) == 0 {
		t.Fatal("no updates delivered")
	}
	prevEpoch := uint64(0)
	for i, u := range updates {
		if u.Err != nil {
			t.Fatalf("update %d errored: %v", i, u.Err)
		}
		if u.Epoch <= prevEpoch {
			t.Fatalf("epochs not monotone: %d after %d", u.Epoch, prevEpoch)
		}
		prevEpoch = u.Epoch
		snap, ok := snaps[u.Epoch]
		if !ok {
			t.Fatalf("update %d at epoch %d: no snapshot pinned", i, u.Epoch)
		}
		fresh, _, err := Run(context.Background(), db, CONNRequest{Seg: q}, AtSnapshot(snap))
		if err != nil {
			t.Fatalf("fresh Exec at epoch %d: %v", u.Epoch, err)
		}
		got := u.Answer.Result()
		if !resultsEqual(got, fresh) {
			t.Fatalf("epoch %d: watched answer differs from fresh Exec\nwatch: %+v\nfresh: %+v",
				u.Epoch, got.Tuples, fresh.Tuples)
		}
	}
	for _, s := range snaps {
		s.Release()
	}
}

// TestWatchWriterConcurrent runs the watcher against a concurrent writer
// goroutine (not lockstep) — the coalescing path — under -race.
func TestWatchWriterConcurrent(t *testing.T) {
	db := smallDB(t)
	q := Seg(Pt(0, 0), Pt(100, 0))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ch, err := db.Watch(ctx, COkNNRequest{Seg: q, K: 2})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wr := rand.New(rand.NewSource(99))
		for i := 0; i < 150; i++ {
			if wr.Intn(2) == 0 {
				db.InsertPoint(Pt(wr.Float64()*100, wr.Float64()*100))
			} else {
				db.DeletePoint(int32(wr.Intn(int(db.Version()))))
			}
		}
	}()
	wg.Wait()

	// The writer is done. Bursts coalesce and filtered commits deliver
	// nothing, but the watcher's final delivery is guaranteed to be
	// bit-identical to the live answer: drain with monotone epochs until an
	// update matches a fresh Exec.
	truth, err := db.Exec(context.Background(), COkNNRequest{Seg: q, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	prev := uint64(0)
	deadline := time.After(60 * time.Second)
	for converged := false; !converged; {
		select {
		case u, ok := <-ch:
			if !ok {
				t.Fatal("watch channel closed before converging")
			}
			if u.Err != nil {
				t.Fatalf("update errored: %v", u.Err)
			}
			if u.Epoch <= prev {
				t.Fatalf("epochs not monotone: %d after %d", u.Epoch, prev)
			}
			prev = u.Epoch
			converged = answersEqual(u.Answer.Value(), truth.Value())
		case <-deadline:
			t.Fatal("watcher never converged on the live answer")
		}
	}
	cancel()
	for range ch {
	}
}
