package connquery

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestWatchBasic drives a watch through a deterministic mutation sequence
// and checks the delivery contract: an initial answer, one re-execution per
// (non-coalesced) publish, correct epochs and deltas, channel closed on
// cancel.
func TestWatchBasic(t *testing.T) {
	db := smallDB(t)
	q := Seg(Pt(0, 0), Pt(100, 0))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ch, err := db.Watch(ctx, CONNRequest{Seg: q})
	if err != nil {
		t.Fatal(err)
	}
	first := <-ch
	if first.Err != nil || first.Epoch != 1 || !first.Delta.Changed {
		t.Fatalf("first update: %+v", first)
	}
	want, _, _ := Run(ctx, db, CONNRequest{Seg: q}, AtVersion(1))
	if !resultsEqual(first.Answer.Result(), want) {
		t.Fatalf("initial watch answer differs from Exec")
	}

	// A mutation that changes the answer mid-segment.
	pid, err := db.InsertPoint(Pt(50, 1))
	if err != nil {
		t.Fatal(err)
	}
	u := <-ch
	if u.Err != nil || u.Epoch != 2 {
		t.Fatalf("update after insert: %+v", u)
	}
	if own, _ := u.Answer.Result().OwnerAt(0.5); own.PID != pid {
		t.Fatalf("watched answer missed the insert: %+v", u.Answer.Result().Tuples)
	}
	if !u.Delta.Changed || len(u.Delta.ChangedSpans) == 0 {
		t.Fatalf("delta missing: %+v", u.Delta)
	}
	for _, sp := range u.Delta.ChangedSpans {
		if !sp.Contains(0.5) && sp.Hi < 0.5 && sp.Lo > 0.5 {
			t.Fatalf("changed span misses the takeover point: %+v", u.Delta.ChangedSpans)
		}
	}

	// A mutation far away: the answer is recomputed but unchanged.
	if _, err := db.InsertObstacle(R(900, 900, 950, 950)); err != nil {
		t.Fatal(err)
	}
	u = <-ch
	if u.Err != nil || u.Epoch != 3 {
		t.Fatalf("update after remote insert: %+v", u)
	}
	if u.Delta.Changed || len(u.Delta.ChangedSpans) != 0 {
		t.Fatalf("remote mutation flagged a change: %+v", u.Delta)
	}

	cancel()
	for range ch { // drain until close
	}

	// Option and request validation.
	if _, err := db.Watch(context.Background(), nil); !errors.Is(err, ErrNilRequest) {
		t.Fatalf("nil request: %v", err)
	}
	if _, err := db.Watch(context.Background(), CONNRequest{Seg: q}, AtVersion(1)); !errors.Is(err, ErrPinnedWatch) {
		t.Fatalf("pinned watch: %v", err)
	}
	if _, err := db.Watch(context.Background(), CONNRequest{Seg: Seg(Pt(1, 1), Pt(1, 1))}); err == nil {
		t.Fatal("degenerate watched request accepted")
	}
}

// TestWatchUnderMutationRace is the satellite guarantee, run under -race in
// CI: a live writer mutates while a watcher follows; delivered epochs must
// be strictly increasing and every delivered answer bit-identical to a
// fresh Exec pinned to that same epoch.
func TestWatchUnderMutationRace(t *testing.T) {
	r := rand.New(rand.NewSource(4711))
	points := make([]Point, 0, 120)
	obstacles := make([]Rect, 0, 20)
	for i := 0; i < 20; i++ {
		lo := Pt(r.Float64()*900, r.Float64()*900)
		obstacles = append(obstacles, R(lo.X, lo.Y, lo.X+10+r.Float64()*30, lo.Y+8+r.Float64()*20))
	}
free:
	for len(points) < 120 {
		p := Pt(r.Float64()*1000, r.Float64()*1000)
		for _, o := range obstacles {
			if o.ContainsOpen(p) {
				continue free
			}
		}
		points = append(points, p)
	}
	db, err := Open(points, obstacles)
	if err != nil {
		t.Fatal(err)
	}
	q := Seg(Pt(100, 480), Pt(800, 520))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Pin every epoch the writer will create, so each watched answer can be
	// re-derived later at exactly its version.
	snaps := map[uint64]*Snapshot{1: db.Snapshot()}
	var snapMu sync.Mutex

	ch, err := db.Watch(ctx, CONNRequest{Seg: q})
	if err != nil {
		t.Fatal(err)
	}

	var upMu sync.Mutex
	var updates []Update
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for u := range ch {
			upMu.Lock()
			updates = append(updates, u)
			upMu.Unlock()
		}
	}()

	const mutations = 60
	wr := rand.New(rand.NewSource(4712))
	for i := 0; i < mutations; i++ {
		switch wr.Intn(4) {
		case 0:
			db.InsertPoint(Pt(wr.Float64()*1000, wr.Float64()*1000))
		case 1:
			lo := Pt(wr.Float64()*950, wr.Float64()*950)
			db.InsertObstacle(R(lo.X, lo.Y, lo.X+5+wr.Float64()*25, lo.Y+5+wr.Float64()*15))
		case 2:
			db.DeletePoint(int32(wr.Intn(200)))
		case 3:
			db.DeleteObstacle(int32(wr.Intn(40)))
		}
		// The single writer snapshots after each mutation, so every epoch in
		// the chain stays pinned-alive for the verification pass.
		s := db.Snapshot()
		snapMu.Lock()
		snaps[s.Epoch()] = s
		snapMu.Unlock()
	}

	// Wait until the watcher has caught up with the final epoch (bursts
	// coalesce, so intermediate epochs may be skipped — but the last one
	// must arrive), then stop the watch.
	final := db.Version()
	deadline := time.After(60 * time.Second)
	for {
		upMu.Lock()
		n := len(updates)
		var last uint64
		if n > 0 {
			last = updates[n-1].Epoch
		}
		upMu.Unlock()
		if last == final {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("watcher never reached the final epoch %d (last %d)", final, last)
		case <-time.After(5 * time.Millisecond):
		}
	}
	cancel()
	<-collected

	// Verify: strictly increasing epochs, every answer bit-identical to a
	// fresh Exec pinned at that epoch.
	if len(updates) == 0 {
		t.Fatal("no updates delivered")
	}
	prevEpoch := uint64(0)
	for i, u := range updates {
		if u.Err != nil {
			t.Fatalf("update %d errored: %v", i, u.Err)
		}
		if u.Epoch <= prevEpoch {
			t.Fatalf("epochs not monotone: %d after %d", u.Epoch, prevEpoch)
		}
		prevEpoch = u.Epoch
		snap, ok := snaps[u.Epoch]
		if !ok {
			t.Fatalf("update %d at epoch %d: no snapshot pinned", i, u.Epoch)
		}
		fresh, _, err := Run(context.Background(), db, CONNRequest{Seg: q}, AtSnapshot(snap))
		if err != nil {
			t.Fatalf("fresh Exec at epoch %d: %v", u.Epoch, err)
		}
		got := u.Answer.Result()
		if !resultsEqual(got, fresh) {
			t.Fatalf("epoch %d: watched answer differs from fresh Exec\nwatch: %+v\nfresh: %+v",
				u.Epoch, got.Tuples, fresh.Tuples)
		}
	}
	for _, s := range snaps {
		s.Release()
	}
}

// TestWatchWriterConcurrent runs the watcher against a concurrent writer
// goroutine (not lockstep) — the coalescing path — under -race.
func TestWatchWriterConcurrent(t *testing.T) {
	db := smallDB(t)
	q := Seg(Pt(0, 0), Pt(100, 0))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ch, err := db.Watch(ctx, COkNNRequest{Seg: q, K: 2})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wr := rand.New(rand.NewSource(99))
		for i := 0; i < 150; i++ {
			if wr.Intn(2) == 0 {
				db.InsertPoint(Pt(wr.Float64()*100, wr.Float64()*100))
			} else {
				db.DeletePoint(int32(wr.Intn(int(db.Version()))))
			}
		}
	}()
	wg.Wait()

	// The writer is done: the watcher's pending wake guarantees an update
	// at the final epoch arrives (bursts in between coalesce arbitrarily).
	final := db.Version()
	prev := uint64(0)
	for u := range ch {
		if u.Err != nil {
			t.Fatalf("update errored: %v", u.Err)
		}
		if u.Epoch <= prev {
			t.Fatalf("epochs not monotone: %d after %d", u.Epoch, prev)
		}
		prev = u.Epoch
		if u.Epoch == final {
			break
		}
	}
	cancel()
	for range ch {
	}
}
