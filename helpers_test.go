package connquery

import (
	"context"
	"testing"
)

// runDist is the request-based obstructed-distance probe the tests use in
// expressions (DistanceRequest cannot error without a cancellable context).
func runDist(db *DB, a, b Point) float64 {
	d, _, _ := Run(context.Background(), db, DistanceRequest{A: a, B: b})
	return d
}

// twinHarness drives two Database handles through the identical operation
// stream and asserts they never diverge: mutations must agree on assigned
// IDs, error outcomes and the version/count books, and answer pairs must be
// bit-identical in payload, epoch and the machine-independent metrics
// (NPE/NOE/|SVG|/Reach). sharddiff_test.go twins a sharded router against a
// single node, plandiff_test.go twins a planner-enabled handle against a
// WithNoPlanner one — the setup lives here so each differential suite does
// not re-grow its own copy.
//
// All failures are reported with t.Errorf (never Fatalf) so harness methods
// are safe to call from reader/writer goroutines; sequential drivers should
// bail out of their loop when t.Failed() turns true.
type twinHarness struct {
	gen *diffWorkload // request/mutation generator: rng, draws, alive-ID books
	dut Database      // handle under test
	ref Database      // reference twin, receives the identical sequence
}

// newTwinHarness wraps a generator and an already-opened handle pair. Both
// handles must have been opened over the same initial dataset, and gen's
// alive-ID books must list that dataset's IDs.
func newTwinHarness(gen *diffWorkload, dut, ref Database) *twinHarness {
	return &twinHarness{gen: gen, dut: dut, ref: ref}
}

// mutate applies one identical random mutation to both twins and asserts
// the outcomes agree (IDs, booleans, error-ness) and that the version and
// count books stay in lockstep. The caller must be the only mutator.
func (tw *twinHarness) mutate(t *testing.T) {
	t.Helper()
	w := tw.gen
	switch w.rng.Intn(4) {
	case 0:
		p := w.pt()
		pid1, err1 := tw.ref.InsertPoint(p)
		pid2, err2 := tw.dut.InsertPoint(p)
		if (err1 == nil) != (err2 == nil) || (err1 == nil && pid1 != pid2) {
			t.Errorf("InsertPoint(%v): ref (%d,%v) vs dut (%d,%v)", p, pid1, err1, pid2, err2)
			return
		}
		if err1 == nil {
			w.alivePts = append(w.alivePts, pid1)
		}
	case 1:
		lo := w.pt()
		sz := w.scale()
		r := R(lo.X, lo.Y, lo.X+(0.5+w.rng.Float64()*6)*sz, lo.Y+(0.5+w.rng.Float64()*6)*sz)
		oid1, err1 := tw.ref.InsertObstacle(r)
		oid2, err2 := tw.dut.InsertObstacle(r)
		if (err1 == nil) != (err2 == nil) || (err1 == nil && oid1 != oid2) {
			t.Errorf("InsertObstacle(%v): ref (%d,%v) vs dut (%d,%v)", r, oid1, err1, oid2, err2)
			return
		}
		if err1 == nil {
			w.aliveObs = append(w.aliveObs, oid1)
		}
	case 2:
		if len(w.alivePts) > 1 { // keep at least one point alive
			i := w.rng.Intn(len(w.alivePts))
			pid := w.alivePts[i]
			ok1 := tw.ref.DeletePoint(pid)
			ok2 := tw.dut.DeletePoint(pid)
			if !ok1 || !ok2 {
				t.Errorf("DeletePoint(%d): ref %v, dut %v", pid, ok1, ok2)
				return
			}
			w.alivePts = append(w.alivePts[:i], w.alivePts[i+1:]...)
		}
	default:
		if len(w.aliveObs) > 0 {
			i := w.rng.Intn(len(w.aliveObs))
			oid := w.aliveObs[i]
			ok1 := tw.ref.DeleteObstacle(oid)
			ok2 := tw.dut.DeleteObstacle(oid)
			if !ok1 || !ok2 {
				t.Errorf("DeleteObstacle(%d): ref %v, dut %v", oid, ok1, ok2)
				return
			}
			w.aliveObs = append(w.aliveObs[:i], w.aliveObs[i+1:]...)
		}
	}
	if v1, v2 := tw.ref.Version(), tw.dut.Version(); v1 != v2 {
		t.Errorf("version skew after mutation: ref %d, dut %d", v1, v2)
	}
	if n1, n2 := tw.ref.NumPoints(), tw.dut.NumPoints(); n1 != n2 {
		t.Errorf("point count skew: ref %d, dut %d", n1, n2)
	}
	if n1, n2 := tw.ref.NumObstacles(), tw.dut.NumObstacles(); n1 != n2 {
		t.Errorf("obstacle count skew: ref %d, dut %d", n1, n2)
	}
}

// checkTwinAnswers asserts got (the handle under test) is bit-identical to
// want (the reference twin): payload, epoch, and the deterministic metrics.
func checkTwinAnswers(t *testing.T, req Request, got, want *Answer) {
	t.Helper()
	if got.Epoch() != want.Epoch() {
		t.Errorf("%s: dut epoch %d, ref %d", req.Kind(), got.Epoch(), want.Epoch())
		return
	}
	if !answersEqual(got.Value(), want.Value()) {
		t.Errorf("%s: payload differs\n dut: %#v\n ref: %#v", req.Kind(), got.Value(), want.Value())
		return
	}
	gm, wm := got.Metrics(), want.Metrics()
	if gm.NPE != wm.NPE || gm.NOE != wm.NOE || gm.SVG != wm.SVG || gm.Reach != wm.Reach {
		t.Errorf("%s: metrics differ: dut npe=%d noe=%d svg=%d reach=%v, ref npe=%d noe=%d svg=%d reach=%v",
			req.Kind(), gm.NPE, gm.NOE, gm.SVG, gm.Reach, wm.NPE, wm.NOE, wm.SVG, wm.Reach)
	}
}

// exec runs req on both twins with per-twin options and checks equivalence
// of outcomes (both error, or both answer identically).
func (tw *twinHarness) exec(t *testing.T, req Request, dutOpts, refOpts []QueryOption) {
	t.Helper()
	ctx := context.Background()
	want, err1 := tw.ref.Exec(ctx, req, refOpts...)
	got, err2 := tw.dut.Exec(ctx, req, dutOpts...)
	if (err1 == nil) != (err2 == nil) {
		t.Errorf("%s: ref err=%v, dut err=%v", req.Kind(), err1, err2)
		return
	}
	if err1 != nil {
		return
	}
	checkTwinAnswers(t, req, got, want)
}
