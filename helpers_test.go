package connquery

import "context"

// runDist is the request-based obstructed-distance probe the tests use in
// expressions (DistanceRequest cannot error without a cancellable context).
func runDist(db *DB, a, b Point) float64 {
	d, _, _ := Run(context.Background(), db, DistanceRequest{A: a, B: b})
	return d
}
