package connquery

// The execution planner's differential harness: a planner-enabled handle and
// a WithNoPlanner twin receive the identical lockstep mutation sequence
// while concurrent readers storm overlapping requests across all 13 kinds,
// and every answer pair — executed at the same pinned epoch on both handles
// — must be bit-identical in payload, epoch and the machine-independent
// metrics (NPE/NOE/|SVG|/Reach). That is the planner's whole contract: a
// shared region-scoped sight-line certificate table changes only how
// visibility verdicts are obtained, never what any query computes.
//
// The world is dense enough (>150 obstacles) that the kernel's full
// corner-pair table is gated off — the only regime where the planner
// engages — and the storm concentrates its requests in a hot sub-square so
// quantized group keys actually collide. Answer caches are disabled on both
// handles: every exec is a real execution, so the planner is exercised
// maximally and pinned-epoch metrics comparisons never depend on
// cross-reader cache state (promoted entries replay the populating
// execution's cost profile by contract, and with concurrent readers the two
// handles' caches would not stay in lockstep).
//
// The harness runs single-node and sharded, and is in the CI race job at
// -cpu 1,2.

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// plannerWorld is a 14x14 grid of small obstacles (196, comfortably past the
// kernel's 150-obstacle full-table gate) with data points in the gaps.
func plannerWorld() ([]Point, []Rect) {
	var pts []Point
	var obs []Rect
	for i := 0; i < 14; i++ {
		for j := 0; j < 14; j++ {
			x, y := float64(i)*7+1, float64(j)*7+1
			obs = append(obs, R(x, y, x+1.5, y+1.5))
			if i%2 == 0 && j%2 == 0 {
				pts = append(pts, Pt(x+3.5, y+3.5))
			}
		}
	}
	return pts, obs
}

// plannerHot is the storm's hot sub-square: small relative to the world so
// concurrent requests land on the same quantized planner cells, and
// straddling the world center so the sharded configuration's queries cross
// cell borders into union mirrors (whose merged obstacle sets are past the
// full-table gate — the only sharded tier where the planner can engage).
var plannerHot = hotBox{lo: 42, side: 12}

// newPlannerTwins opens the planner-enabled handle under test and its
// WithNoPlanner reference twin over the same dense world (sharded when
// shards > 1) and wires them into a twinHarness.
func newPlannerTwins(t *testing.T, shards int, seed int64) *twinHarness {
	t.Helper()
	pts, obs := plannerWorld()
	var dut, ref Database
	var err error
	if shards > 1 {
		dut, err = OpenSharded(pts, obs, shards, WithAnswerCache(0))
		if err == nil {
			ref, err = OpenSharded(pts, obs, shards, WithAnswerCache(0), WithNoPlanner())
		}
	} else {
		dut, err = Open(pts, obs, WithAnswerCache(0))
		if err == nil {
			ref, err = Open(pts, obs, WithAnswerCache(0), WithNoPlanner())
		}
	}
	if err != nil {
		t.Fatal(err)
	}
	hot := plannerHot
	gen := &diffWorkload{rng: rand.New(rand.NewSource(seed)), hot: &hot}
	for i := range pts {
		gen.alivePts = append(gen.alivePts, int32(i))
	}
	for i := range obs {
		gen.aliveObs = append(gen.aliveObs, int32(i))
	}
	return newTwinHarness(gen, dut, ref)
}

// runPlannerStorm is the differential storm driver: one writer applies
// lockstep mutations (alternating draws inside and outside the hot region)
// and pins a (dut, ref) snapshot pair after each, while `readers` goroutines
// storm overlapping requests at the latest pinned pair and check every
// answer bit-identical across the twins. pause throttles the writer; zero
// maximizes epoch churn.
func runPlannerStorm(t *testing.T, shards, readers, readerOps, writerOps int, pause time.Duration) *twinHarness {
	h := newPlannerTwins(t, shards, 7+int64(shards))
	hot := h.gen.hot

	type pinPair struct{ dut, ref Pin }
	var mu sync.Mutex
	pairs := []pinPair{{h.dut.Pin(), h.ref.Pin()}}
	defer func() {
		for _, p := range pairs {
			p.dut.Release()
			p.ref.Release()
		}
	}()
	latest := func() pinPair {
		mu.Lock()
		defer mu.Unlock()
		return pairs[len(pairs)-1]
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // sole writer; the harness asserts the twins stay in lockstep
		defer wg.Done()
		for i := 0; i < writerOps && !t.Failed(); i++ {
			if i%2 == 0 {
				h.gen.hot = nil // world-wide draw: mutate outside the hot region too
			} else {
				h.gen.hot = hot
			}
			h.mutate(t)
			p := pinPair{h.dut.Pin(), h.ref.Pin()}
			if p.dut.Epoch() != p.ref.Epoch() {
				t.Errorf("pinned epoch skew: dut %d, ref %d", p.dut.Epoch(), p.ref.Epoch())
			}
			mu.Lock()
			pairs = append(pairs, p)
			mu.Unlock()
			if pause > 0 {
				time.Sleep(pause)
			}
		}
		h.gen.hot = hot
	}()

	ctx := context.Background()
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rd := &diffWorkload{rng: rand.New(rand.NewSource(1000 + int64(g))), hot: hot}
			for i := 0; i < readerOps && !t.Failed(); i++ {
				p := latest()
				req := rd.request()
				want, err1 := h.ref.Exec(ctx, req, p.ref.At())
				got, err2 := h.dut.Exec(ctx, req, p.dut.At())
				if (err1 == nil) != (err2 == nil) {
					t.Errorf("%s: ref err=%v, dut err=%v", req.Kind(), err1, err2)
					continue
				}
				if err1 != nil {
					continue // invalid request: both twins rejected it
				}
				checkTwinAnswers(t, req, got, want)
			}
		}(g)
	}
	wg.Wait()
	return h
}

// stormOps scales a storm's op count down ~3x under the race detector,
// which multiplies each exec's cost roughly tenfold: the differential
// contract is checked per answer, so the race configurations keep the full
// concurrency shape (readers, lockstep writer, epoch churn) at a volume
// that fits the CI race job's timeout.
func stormOps(n int) int {
	if raceEnabled {
		return (n + 2) / 3
	}
	return n
}

// ensurePlannerEngaged keeps firing rounds of concurrent hot-region execs
// until the handle's planner has demonstrably built AND shared a table. A
// group forms only when >=2 requests are in flight on one key, which the
// scheduler is free to avoid on any single round but not for a whole
// deadline's worth of rounds.
func ensurePlannerEngaged(t *testing.T, h *twinHarness) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	hot := plannerHot
	rd := &diffWorkload{rng: rand.New(rand.NewSource(424242)), hot: &hot}
	ctx := context.Background()
	for {
		ps := h.dut.PlannerStats()
		if ps.GroupsFormed > 0 && ps.Adoptions > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("planner never engaged under storm: %+v", ps)
			return
		}
		var wg sync.WaitGroup
		for k := 0; k < 8; k++ {
			req := CONNRequest{Seg: rd.seg()}
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := h.dut.Exec(ctx, req); err != nil {
					t.Errorf("storm exec: %v", err)
				}
			}()
		}
		wg.Wait()
	}
}

// TestPlannerDifferentialStorm is the single-node headline proof: 8 readers
// storm all 13 request kinds against a mutating planner handle and its
// WithNoPlanner twin, every answer pair bit-identical, and the planner is
// then shown to have actually built and shared tables (the differential
// would be vacuous against a planner that never engaged).
func TestPlannerDifferentialStorm(t *testing.T) {
	h := runPlannerStorm(t, 1, 8, stormOps(25), stormOps(20), time.Millisecond)
	ensurePlannerEngaged(t, h)
	t.Logf("planner stats: %+v", h.dut.PlannerStats())
	if ps := h.ref.PlannerStats(); ps != (PlannerStats{}) {
		t.Errorf("WithNoPlanner handle reported planner activity: %+v", ps)
	}
}

// TestPlannerDifferentialStormSharded runs the same storm with both twins
// sharded 2x2: shard units and union mirrors carry their own planners (the
// option flows through openSubWorld), and the router's answers must stay
// bit-identical to the planner-free router's.
func TestPlannerDifferentialStormSharded(t *testing.T) {
	h := runPlannerStorm(t, 4, 4, stormOps(25), stormOps(12), time.Millisecond)
	ps := h.dut.PlannerStats()
	t.Logf("sharded planner stats: %+v", ps)
	// Group formation needs scheduler-dependent concurrency, but mere
	// consultation does not: the hot region straddles the grid center, so
	// spanning queries must have executed on planner-eligible union worlds.
	if ps.GroupsFormed == 0 && ps.Fallbacks == 0 {
		t.Errorf("sharded storm never consulted a planner: %+v", ps)
	}
}

// TestPlannerStormUnderMutation maximizes epoch churn: the writer mutates
// with no pause — alternating inside and outside the hot region — while 8
// readers storm, so shared tables are constantly invalidated by epoch
// turnover and readers race group formation against key retirement. Every
// answer is still verified against the WithNoPlanner twin at the same
// pinned epoch.
func TestPlannerStormUnderMutation(t *testing.T) {
	h := runPlannerStorm(t, 1, 8, stormOps(30), stormOps(60), 0)
	ensurePlannerEngaged(t, h)
	ps := h.dut.PlannerStats()
	t.Logf("planner stats under churn: %+v", ps)
	if ps.Fallbacks == 0 {
		t.Errorf("churn storm never fell back to the private path: %+v", ps)
	}
}
