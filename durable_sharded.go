package connquery

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync/atomic"

	"connquery/internal/geom"
	"connquery/internal/stats"
	"connquery/internal/wal"
)

// Sharded durability: each shard unit keeps its own single-node durable
// directory (checkpoint + WAL, exactly the OpenDurable machinery with
// automatic checkpoints disabled), and the router adds a sequencer log — one
// record per committed mutation, carrying the global ID and the router
// revision — plus a router checkpoint holding the cross-shard state the
// shard directories cannot reproduce alone: the grid geometry, the
// local-to-global ID tables, and the revision.
//
// Layout under the data directory:
//
//	router/       router checkpoints (ckpt-%016x by revision)
//	seq/          sequencer WAL segments
//	shard-%03d/   one OpenDurable-style directory per shard unit
//
// Write path. A mutation applies to its target shards first (each shard's
// own WAL logs the local record before the shard publishes, as on any
// durable DB), then enters the commit sequencer, where the sequencer record
// is appended — and in strict mode fsynced — before the revision advances.
// The sequencer log is therefore always a prefix of the committed revision
// stream, and a shard-log record without a matching sequencer record is an
// unsequenced leftover of a crash.
//
// Checkpoint protocol (all shard locks + the sequencer lock held, so the
// image is a quiesced cut): sync every shard WAL and the sequencer log;
// write the router checkpoint; checkpoint every shard; truncate the
// sequencer log. The router image goes first so that whatever prefix of the
// shard checkpoints a crash leaves behind, recovery can always rebuild the
// router cut from shard checkpoints + shard logs (the pre-write sync
// guarantees the logs reach the router cut).
//
// Recovery walks back to the newest router checkpoint's revision R, then
// extends it entry by entry along the sequencer tail: an entry is accepted
// only when EVERY target shard's log holds the matching next record (same
// op, same local ID, consecutive local epoch). The first entry that fails
// the test is the consistent cut — a mutation that did not durably reach all
// its replicas is dropped everywhere, so replicated obstacles never diverge.
// Accepted entries replay through the shard mutation path and rebuild the
// ID tables and the in-memory log synthetically; every log is then rewritten
// to exactly the accepted state, and the recovered twin is order-isomorphic
// to the pre-crash instance: answers and the machine-independent metrics are
// bit-identical at the recovered revision.

const (
	routerDirName = "router"
	seqDirName    = "seq"
)

func shardDirName(i int) string { return fmt.Sprintf("shard-%03d", i) }

// Page-ID namespaces for the shared recovery buffer: recovery reads many
// files across many directories, and the per-file page IDs (segment<<32 |
// page, or ckptPageBase | page) would collide across directories. The bases
// sit above every per-file ID's bit range.
func shardPageNS(i int) int64 { return int64(i+1) << 52 }

const (
	seqPageNS    = int64(1) << 61
	routerPageNS = int64(1) << 62
)

func pageNS(base int64, onPage func(int64)) func(int64) {
	if onPage == nil {
		return nil
	}
	return func(id int64) { onPage(base | id) }
}

// shardedDurable is the router's durable attachment: the sequencer writer,
// the checkpoint cadence and the latched failure state. since, err and
// closed are guarded by ShardedDB.seqMu; ckptGate serializes automatic
// checkpoints without holding any lock.
type shardedDurable struct {
	dir      string
	seq      *wal.Writer
	since    int // sequencer records since the last checkpoint
	every    int // auto-checkpoint interval; 0 = manual only
	err      error
	closed   bool
	ckptGate atomic.Bool
	rec      RecoveryStats
}

// entryRecord encodes a committed log entry as its sequencer WAL record:
// the global ID, the router revision in the epoch slot, and the geometry
// (recovery re-derives the target shards from it).
func entryRecord(e changeEntry, rev uint64) wal.Record {
	r := wal.Record{ID: e.gid, Epoch: rev}
	switch e.op {
	case opInsPt:
		r.Op = wal.OpInsertPoint
		r.Coords = [4]float64{e.p.X, e.p.Y}
	case opDelPt:
		r.Op = wal.OpDeletePoint
		r.Coords = [4]float64{e.p.X, e.p.Y}
	case opInsObs:
		r.Op = wal.OpInsertObstacle
		r.Coords = [4]float64{e.r.MinX, e.r.MinY, e.r.MaxX, e.r.MaxY}
	case opDelObs:
		r.Op = wal.OpDeleteObstacle
		r.Coords = [4]float64{e.r.MinX, e.r.MinY, e.r.MaxX, e.r.MaxY}
	}
	return r
}

// recordEntry is the inverse of entryRecord (the revision stays in the WAL
// record; the log entry does not store it).
func recordEntry(r wal.Record) (changeEntry, error) {
	e := changeEntry{gid: r.ID}
	switch r.Op {
	case wal.OpInsertPoint:
		e.op = opInsPt
		e.p = Pt(r.Coords[0], r.Coords[1])
	case wal.OpDeletePoint:
		e.op = opDelPt
		e.p = Pt(r.Coords[0], r.Coords[1])
	case wal.OpInsertObstacle:
		e.op = opInsObs
		e.r = Rect{MinX: r.Coords[0], MinY: r.Coords[1], MaxX: r.Coords[2], MaxY: r.Coords[3]}
	case wal.OpDeleteObstacle:
		e.op = opDelObs
		e.r = Rect{MinX: r.Coords[0], MinY: r.Coords[1], MaxX: r.Coords[2], MaxY: r.Coords[3]}
	default:
		return e, fmt.Errorf("connquery: durable: sequencer record with unknown op %d", r.Op)
	}
	return e, nil
}

// Router checkpoint format: the cross-shard image at one quiesced revision.
//
//	magic   [8]byte  "CONNRv1\n"
//	rev     uint64
//	cols    uint32
//	rows    uint32
//	world   4 * float64 (grid extent)
//	dummy   2 * float64 (bootstrap point for empty shards/mirrors)
//	lenP2S  uint64   global points registered at the cut (dead included)
//	lenO2S  uint64   global obstacles registered at the cut
//	nShards uint32
//	per shard:
//	  epoch uint64   the shard DB's MVCC epoch at the cut
//	  nP    uint64 + nP * int32 (l2gP; -1 marks a bootstrap dummy slot)
//	  nO    uint64 + nO * int32 (l2gO)
//	crc     uint32   CRC-32C of everything above
var routerMagic = [8]byte{'C', 'O', 'N', 'N', 'R', 'v', '1', '\n'}

// routerCkpt is a decoded router checkpoint.
type routerCkpt struct {
	rev        uint64
	cols, rows int
	world      geom.Rect
	dummy      Point
	epochs     []uint64
	l2gP       [][]int32
	l2gO       [][]int32
	lenP2S     int
	lenO2S     int
}

// routerImage captures the router checkpoint of the current state. Caller
// holds every shard lock and seqMu, so the cut is quiesced.
func (s *ShardedDB) routerImage() *routerCkpt {
	rc := &routerCkpt{
		rev:    s.rev.Load(),
		cols:   s.m.cols,
		rows:   s.m.rows,
		world:  s.m.world,
		dummy:  s.dummy,
		lenP2S: len(s.p2s),
		lenO2S: len(s.o2s),
	}
	for _, sh := range s.shards {
		rc.epochs = append(rc.epochs, sh.db.Version())
		rc.l2gP = append(rc.l2gP, append([]int32(nil), sh.l2gP...))
		rc.l2gO = append(rc.l2gO, append([]int32(nil), sh.l2gO...))
	}
	return rc
}

func writeRouterCkpt(w io.Writer, rc *routerCkpt) error {
	h := crc32.New(crc32.MakeTable(crc32.Castagnoli))
	bw := bufio.NewWriter(io.MultiWriter(w, h))
	if _, err := bw.Write(routerMagic[:]); err != nil {
		return err
	}
	writeU64 := func(x uint64) error { return binary.Write(bw, binary.LittleEndian, x) }
	writeU32 := func(x uint32) error { return binary.Write(bw, binary.LittleEndian, x) }
	writeF64 := func(x float64) error {
		return binary.Write(bw, binary.LittleEndian, math.Float64bits(x))
	}
	writeIDs := func(ids []int32) error {
		if err := writeU64(uint64(len(ids))); err != nil {
			return err
		}
		for _, id := range ids {
			if err := writeU32(uint32(id)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := writeU64(rc.rev); err != nil {
		return err
	}
	if err := writeU32(uint32(rc.cols)); err != nil {
		return err
	}
	if err := writeU32(uint32(rc.rows)); err != nil {
		return err
	}
	for _, x := range [4]float64{rc.world.MinX, rc.world.MinY, rc.world.MaxX, rc.world.MaxY} {
		if err := writeF64(x); err != nil {
			return err
		}
	}
	if err := writeF64(rc.dummy.X); err != nil {
		return err
	}
	if err := writeF64(rc.dummy.Y); err != nil {
		return err
	}
	if err := writeU64(uint64(rc.lenP2S)); err != nil {
		return err
	}
	if err := writeU64(uint64(rc.lenO2S)); err != nil {
		return err
	}
	if err := writeU32(uint32(len(rc.epochs))); err != nil {
		return err
	}
	for i := range rc.epochs {
		if err := writeU64(rc.epochs[i]); err != nil {
			return err
		}
		if err := writeIDs(rc.l2gP[i]); err != nil {
			return err
		}
		if err := writeIDs(rc.l2gO[i]); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, h.Sum32())
}

// parseRouterCkpt decodes a router checkpoint image, CRC first.
func parseRouterCkpt(data []byte) (*routerCkpt, error) {
	if len(data) < len(routerMagic)+8+4 {
		return nil, fmt.Errorf("connquery: router checkpoint: truncated file (%d bytes)", len(data))
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := binary.LittleEndian.Uint32(trailer), crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli)); got != want {
		return nil, fmt.Errorf("connquery: router checkpoint: CRC mismatch (file %08x, computed %08x)", got, want)
	}
	if [8]byte(body[:8]) != routerMagic {
		return nil, fmt.Errorf("connquery: router checkpoint: bad magic %q", body[:8])
	}
	off := 8
	readU64 := func() (uint64, error) {
		if off+8 > len(body) {
			return 0, io.ErrUnexpectedEOF
		}
		x := binary.LittleEndian.Uint64(body[off:])
		off += 8
		return x, nil
	}
	readU32 := func() (uint32, error) {
		if off+4 > len(body) {
			return 0, io.ErrUnexpectedEOF
		}
		x := binary.LittleEndian.Uint32(body[off:])
		off += 4
		return x, nil
	}
	readF64 := func() (float64, error) {
		bits, err := readU64()
		if err != nil {
			return 0, err
		}
		x := math.Float64frombits(bits)
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0, fmt.Errorf("non-finite coordinate")
		}
		return x, nil
	}
	const maxObjects = 1 << 28
	readIDs := func(min, bound int64) ([]int32, error) {
		n, err := readU64()
		if err != nil {
			return nil, err
		}
		if n > maxObjects {
			return nil, fmt.Errorf("implausible table length %d", n)
		}
		ids := make([]int32, n)
		for i := range ids {
			u, err := readU32()
			if err != nil {
				return nil, err
			}
			id := int32(u)
			if int64(id) < min || int64(id) >= bound {
				return nil, fmt.Errorf("table entry %d out of range [%d,%d)", id, min, bound)
			}
			ids[i] = id
		}
		return ids, nil
	}

	rc := &routerCkpt{}
	rev, err := readU64()
	if err != nil {
		return nil, fmt.Errorf("connquery: router checkpoint: revision: %w", err)
	}
	if rev == 0 {
		return nil, fmt.Errorf("connquery: router checkpoint: zero revision")
	}
	rc.rev = rev
	cols, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("connquery: router checkpoint: grid: %w", err)
	}
	rows, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("connquery: router checkpoint: grid: %w", err)
	}
	if cols == 0 || rows == 0 || uint64(cols)*uint64(rows) > 1<<20 {
		return nil, fmt.Errorf("connquery: router checkpoint: implausible grid %dx%d", cols, rows)
	}
	rc.cols, rc.rows = int(cols), int(rows)
	var vals [4]float64
	for j := range vals {
		if vals[j], err = readF64(); err != nil {
			return nil, fmt.Errorf("connquery: router checkpoint: world: %w", err)
		}
	}
	rc.world = geom.Rect{MinX: vals[0], MinY: vals[1], MaxX: vals[2], MaxY: vals[3]}
	if rc.dummy.X, err = readF64(); err != nil {
		return nil, fmt.Errorf("connquery: router checkpoint: dummy: %w", err)
	}
	if rc.dummy.Y, err = readF64(); err != nil {
		return nil, fmt.Errorf("connquery: router checkpoint: dummy: %w", err)
	}
	lenP, err := readU64()
	if err != nil {
		return nil, fmt.Errorf("connquery: router checkpoint: point registry: %w", err)
	}
	lenO, err := readU64()
	if err != nil {
		return nil, fmt.Errorf("connquery: router checkpoint: obstacle registry: %w", err)
	}
	if lenP > maxObjects || lenO > maxObjects {
		return nil, fmt.Errorf("connquery: router checkpoint: implausible registry sizes %d/%d", lenP, lenO)
	}
	rc.lenP2S, rc.lenO2S = int(lenP), int(lenO)
	nShards, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("connquery: router checkpoint: shard count: %w", err)
	}
	if int(nShards) != rc.cols*rc.rows {
		return nil, fmt.Errorf("connquery: router checkpoint: %d shards for a %dx%d grid", nShards, rc.cols, rc.rows)
	}
	for i := 0; i < int(nShards); i++ {
		epoch, err := readU64()
		if err != nil {
			return nil, fmt.Errorf("connquery: router checkpoint: shard %d epoch: %w", i, err)
		}
		if epoch == 0 {
			return nil, fmt.Errorf("connquery: router checkpoint: shard %d has zero epoch", i)
		}
		l2gP, err := readIDs(-1, int64(rc.lenP2S))
		if err != nil {
			return nil, fmt.Errorf("connquery: router checkpoint: shard %d point table: %w", i, err)
		}
		l2gO, err := readIDs(0, int64(rc.lenO2S))
		if err != nil {
			return nil, fmt.Errorf("connquery: router checkpoint: shard %d obstacle table: %w", i, err)
		}
		rc.epochs = append(rc.epochs, epoch)
		rc.l2gP = append(rc.l2gP, l2gP)
		rc.l2gO = append(rc.l2gO, l2gO)
	}
	if off != len(body) {
		return nil, fmt.Errorf("connquery: router checkpoint: %d trailing bytes", len(body)-off)
	}
	return rc, nil
}

// writeRouterCkptFile persists rc atomically in the router directory and
// removes older router checkpoints once the new one is durable.
func writeRouterCkptFile(routerDir string, rc *routerCkpt) error {
	path := filepath.Join(routerDir, checkpointName(rc.rev))
	if err := atomicWriteFile(path, func(w io.Writer) error { return writeRouterCkpt(w, rc) }); err != nil {
		return fmt.Errorf("connquery: router checkpoint: %w", err)
	}
	names, err := listCheckpoints(routerDir)
	if err != nil {
		return fmt.Errorf("connquery: router checkpoint: %w", err)
	}
	for _, name := range names {
		if name != checkpointName(rc.rev) {
			if err := os.Remove(filepath.Join(routerDir, name)); err != nil {
				return fmt.Errorf("connquery: router checkpoint: %w", err)
			}
		}
	}
	return nil
}

// loadRouterCkpt reads and parses the newest router checkpoint, charging
// recovery page accounting. Nil data (no error) when none exists.
func loadRouterCkpt(routerDir string, pageSize int, onPage func(int64)) (*routerCkpt, int64, error) {
	names, err := listCheckpoints(routerDir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, err
	}
	if len(names) == 0 {
		return nil, 0, nil
	}
	path := filepath.Join(routerDir, names[len(names)-1])
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	if onPage != nil && pageSize > 0 {
		for off := 0; off < len(data); off += pageSize {
			onPage(ckptPageBase | int64(off/pageSize))
		}
	}
	rc, err := parseRouterCkpt(data)
	if err != nil {
		return nil, 0, fmt.Errorf("%s: %w", path, err)
	}
	return rc, int64(len(data)), nil
}

// OpenDurableSharded opens (or creates) a durable sharded database in dir.
//
// When dir holds durable state, the instance recovers each shard from its
// own checkpoint-plus-log, then extends the router checkpoint along the
// sequencer log to the latest revision every mutation durably reached — the
// recovered twin answers bit-identically to the pre-crash instance at that
// revision. The shard count must match the stored grid. When dir is empty,
// the initial world comes from WithBootstrapData, built exactly as
// OpenSharded would build it. All regular Options apply; WithGroupCommit
// and WithCheckpointEvery tune durability (the checkpoint interval counts
// router-level mutations).
func OpenDurableSharded(dir string, shards int, opts ...Option) (*ShardedDB, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("connquery: durable: %w", err)
	}
	pc := recoveryCounter(cfg)
	routerDir := filepath.Join(dir, routerDirName)
	rc, rcBytes, err := loadRouterCkpt(routerDir, cfg.pageSize, pageNS(routerPageNS, pc.RecordAccess))
	if err != nil {
		return nil, fmt.Errorf("connquery: durable: %w", err)
	}
	every := resolveCkptEvery(cfg.ckptEvery)

	if rc == nil {
		if cfg.boot == nil {
			return nil, fmt.Errorf("connquery: durable: %s holds no durable state and no WithBootstrapData was given", dir)
		}
		s, err := OpenSharded(cfg.boot.points, cfg.boot.obstacles, shards, opts...)
		if err != nil {
			return nil, err
		}
		if err := s.makeDurableSharded(dir, cfg, every); err != nil {
			return nil, err
		}
		return s, nil
	}
	if cfg.boot != nil {
		return nil, fmt.Errorf("connquery: durable: WithBootstrapData given but %s already holds state at revision %d", dir, rc.rev)
	}
	if shards != rc.cols*rc.rows {
		return nil, fmt.Errorf("connquery: durable: %s was created with %d shards (%dx%d grid), cannot open with %d — re-sharding an existing store is not supported",
			dir, rc.cols*rc.rows, rc.cols, rc.rows, shards)
	}
	return recoverSharded(dir, rc, rcBytes, cfg, every, opts, pc)
}

// makeDurableSharded attaches a freshly built ShardedDB to an empty
// directory. The router checkpoint is written LAST: HasDurableState keys on
// it, so a crash mid-bootstrap leaves a directory that simply bootstraps
// again (every earlier artifact is rewritten deterministically).
func (s *ShardedDB) makeDurableSharded(dir string, cfg config, every int) error {
	for i, sh := range s.shards {
		sd := filepath.Join(dir, shardDirName(i))
		if err := os.MkdirAll(sd, 0o755); err != nil {
			return fmt.Errorf("connquery: durable: %w", err)
		}
		if err := makeDurable(sh.db, sd, cfg, 0); err != nil {
			return fmt.Errorf("connquery: durable: shard %d: %w", i, err)
		}
	}
	seqDir := filepath.Join(dir, seqDirName)
	if err := os.MkdirAll(seqDir, 0o755); err != nil {
		return fmt.Errorf("connquery: durable: %w", err)
	}
	routerDir := filepath.Join(dir, routerDirName)
	if err := os.MkdirAll(routerDir, 0o755); err != nil {
		return fmt.Errorf("connquery: durable: %w", err)
	}
	if err := writeRouterCkptFile(routerDir, s.routerImage()); err != nil {
		return err
	}
	w, err := wal.Create(seqDir, s.rev.Load()+1, walOptions(cfg))
	if err != nil {
		return fmt.Errorf("connquery: durable: %w", err)
	}
	s.dur = &shardedDurable{dir: dir, seq: w, every: every, rec: RecoveryStats{Epoch: s.rev.Load()}}
	return nil
}

// shardScan is one shard's recovery cursor: the scanned log and how far the
// consistent-cut walk has consumed it.
type shardScan struct {
	recs    []wal.Record // scanned shard log, ascending epochs
	next    int          // cursor: first record not yet consumed
	applied []wal.Record // records replayed into the shard DB, for the rewrite
}

// recoverSharded rebuilds a ShardedDB from a router checkpoint plus the
// shard and sequencer logs. See the package comment at the top of this file
// for the protocol.
func recoverSharded(dir string, rc *routerCkpt, rcBytes int64, cfg config, every int, opts []Option, pc *stats.PageCounter) (*ShardedDB, error) {
	n := rc.cols * rc.rows
	s := &ShardedDB{
		m:        newShardMap(rc.cols, rc.rows, rc.world),
		opts:     append([]Option(nil), opts...),
		cfg:      cfg,
		mirrors:  make(map[cellSpan]*unionMirror),
		pins:     make(map[uint64]map[*ShardedSnapshot]struct{}),
		dummy:    rc.dummy,
		nInitPts: rc.lenP2S,
		nInitObs: rc.lenO2S,
	}
	s.mirCap = 2 * n
	if s.mirCap < 8 {
		s.mirCap = 8
	}
	s.shards = make([]*shardUnit, n)
	rec := RecoveryStats{CheckpointBytes: rcBytes}

	// Phase 1: per shard, load the checkpoint, open at it, scan the log, and
	// replay the mandatory stretch up to the router checkpoint's view of the
	// shard. The checkpoint protocol synced every shard log before the
	// router image was written, so an incomplete stretch is corruption, not
	// a crash artifact.
	scans := make([]*shardScan, n)
	for i := 0; i < n; i++ {
		sd := filepath.Join(dir, shardDirName(i))
		ck, ckBytes, err := loadLatestCheckpoint(sd, cfg.pageSize, pageNS(shardPageNS(i), pc.RecordAccess))
		if err != nil {
			return nil, fmt.Errorf("connquery: durable: shard %d: %w", i, err)
		}
		if ck == nil {
			return nil, fmt.Errorf("connquery: durable: shard %d of %s has no checkpoint (torn bootstrap — remove the directory and re-bootstrap)", i, dir)
		}
		db, err := openAt(ck, cfg)
		if err != nil {
			return nil, fmt.Errorf("connquery: durable: shard %d: %w", i, err)
		}
		if db.Version() > rc.epochs[i] {
			return nil, fmt.Errorf("connquery: durable: shard %d checkpoint (epoch %d) is newer than the router checkpoint's view (epoch %d)", i, db.Version(), rc.epochs[i])
		}
		sc, err := wal.ScanDir(sd, cfg.pageSize, pageNS(shardPageNS(i), pc.RecordAccess))
		if err != nil {
			return nil, fmt.Errorf("connquery: durable: shard %d: %w", i, err)
		}
		rec.CheckpointBytes += ckBytes
		rec.WALBytes += sc.Bytes
		rec.TornBytes += sc.TornBytes

		cut := 0
		for cut < len(sc.Records) && sc.Records[cut].Epoch <= rc.epochs[i] {
			cut++
		}
		applied, err := replayRecords(db, sc.Records[:cut])
		if err != nil {
			return nil, fmt.Errorf("connquery: durable: shard %d: %w", i, err)
		}
		if got := db.Version(); got != rc.epochs[i] {
			return nil, fmt.Errorf("connquery: durable: shard %d log ends at epoch %d, router checkpoint expects %d", i, got, rc.epochs[i])
		}
		s.shards[i] = &shardUnit{
			region: s.m.cellRegion(i),
			db:     db,
			l2gP:   append([]int32(nil), rc.l2gP[i]...),
			l2gO:   append([]int32(nil), rc.l2gO[i]...),
		}
		scans[i] = &shardScan{recs: sc.Records, next: cut, applied: applied}
	}

	// Phase 2: rebuild the global registries at the router cut from the ID
	// tables plus the shard states (now exactly at that cut).
	s.p2s = make([]pointLoc, rc.lenP2S)
	s.o2s = make([]obsLoc, rc.lenO2S)
	seenP := make([]bool, rc.lenP2S)
	for i, sh := range s.shards {
		v := sh.db.current()
		if len(sh.l2gP) != len(v.points) || len(sh.l2gO) != len(v.obstacles) {
			return nil, fmt.Errorf("connquery: durable: shard %d tables (%d points, %d obstacles) disagree with its recovered storage (%d, %d)",
				i, len(sh.l2gP), len(sh.l2gO), len(v.points), len(v.obstacles))
		}
		for lid, gid := range sh.l2gP {
			if gid < 0 {
				continue // bootstrap dummy slot
			}
			if seenP[gid] {
				return nil, fmt.Errorf("connquery: durable: point %d claimed by two shards", gid)
			}
			seenP[gid] = true
			s.p2s[gid] = pointLoc{shard: int32(i), lid: int32(lid), p: v.points[lid]}
		}
		for lid, gid := range sh.l2gO {
			s.o2s[gid].r = v.obstacles[lid]
			s.o2s[gid].reps = append(s.o2s[gid].reps, obsRep{shard: int32(i), lid: int32(lid)})
		}
	}
	for gid, ok := range seenP {
		if !ok {
			return nil, fmt.Errorf("connquery: durable: point %d is in no shard's table", gid)
		}
	}
	for gid := range s.o2s {
		if len(s.o2s[gid].reps) == 0 {
			return nil, fmt.Errorf("connquery: durable: obstacle %d has no replicas", gid)
		}
	}

	// Phase 3: the consistent-cut walk along the sequencer tail. An entry is
	// accepted only when every target shard's log holds the matching next
	// record; acceptance applies the records and redoes the sequencer's
	// bookkeeping exactly as the original commit did.
	seqDir := filepath.Join(dir, seqDirName)
	if err := os.MkdirAll(seqDir, 0o755); err != nil {
		return nil, fmt.Errorf("connquery: durable: %w", err)
	}
	seqScan, err := wal.ScanDir(seqDir, cfg.pageSize, pageNS(seqPageNS, pc.RecordAccess))
	if err != nil {
		return nil, fmt.Errorf("connquery: durable: sequencer: %w", err)
	}
	rec.WALBytes += seqScan.Bytes
	rec.TornBytes += seqScan.TornBytes

	rev := rc.rev
	var acceptedSeq []wal.Record
	tailDelPts := make(map[int32]bool)
	tailDelObs := make(map[int32]bool)
walk:
	for _, se := range seqScan.Records {
		if se.Epoch <= rc.rev {
			continue // pre-checkpoint history, already in the image
		}
		if se.Epoch != rev+1 {
			return nil, fmt.Errorf("connquery: durable: sequencer gap: log jumps from revision %d to %d", rev, se.Epoch)
		}
		e, err := recordEntry(se)
		if err != nil {
			return nil, err
		}
		// Derive the target shards exactly as the live mutation would.
		var targets []int
		switch e.op {
		case opInsPt:
			if e.gid != int32(len(s.p2s)) {
				return nil, fmt.Errorf("connquery: durable: sequencer assigns PID %d, registry expects %d", e.gid, len(s.p2s))
			}
			targets = []int{s.m.cellOf(e.p)}
		case opDelPt:
			if e.gid < 0 || int(e.gid) >= len(s.p2s) {
				return nil, fmt.Errorf("connquery: durable: sequencer deletes unknown point %d", e.gid)
			}
			targets = []int{int(s.p2s[e.gid].shard)}
		case opInsObs:
			if e.gid != int32(len(s.o2s)) {
				return nil, fmt.Errorf("connquery: durable: sequencer assigns OID %d, registry expects %d", e.gid, len(s.o2s))
			}
			for i, sh := range s.shards {
				if e.r.Intersects(sh.region) {
					targets = append(targets, i)
				}
			}
		case opDelObs:
			if e.gid < 0 || int(e.gid) >= len(s.o2s) {
				return nil, fmt.Errorf("connquery: durable: sequencer deletes unknown obstacle %d", e.gid)
			}
			for _, rep := range s.o2s[e.gid].reps {
				targets = append(targets, int(rep.shard))
			}
		}
		// All targets must hold the matching next record, or the entry — and
		// everything after it — is beyond the consistent cut.
		for _, ti := range targets {
			sc := scans[ti]
			if sc.next >= len(sc.recs) {
				break walk
			}
			r := sc.recs[sc.next]
			var wantOp uint8
			var wantLid int32
			switch e.op {
			case opInsPt:
				wantOp, wantLid = wal.OpInsertPoint, int32(len(s.shards[ti].l2gP))
			case opDelPt:
				wantOp, wantLid = wal.OpDeletePoint, s.p2s[e.gid].lid
			case opInsObs:
				wantOp, wantLid = wal.OpInsertObstacle, int32(len(s.shards[ti].l2gO))
			case opDelObs:
				for _, rep := range s.o2s[e.gid].reps {
					if int(rep.shard) == ti {
						wantLid = rep.lid
					}
				}
				wantOp = wal.OpDeleteObstacle
			}
			if r.Op != wantOp || r.ID != wantLid || r.Coords != se.Coords ||
				r.Epoch != s.shards[ti].db.Version()+1 {
				break walk
			}
		}
		// Accepted: consume and apply on every target, then redo the
		// sequencer bookkeeping.
		for _, ti := range targets {
			sc := scans[ti]
			r := sc.recs[sc.next]
			if err := s.shards[ti].db.applyRecord(r); err != nil {
				return nil, fmt.Errorf("connquery: durable: shard %d: %w", ti, err)
			}
			sc.applied = append(sc.applied, r)
			sc.next++
		}
		switch e.op {
		case opInsPt:
			ti := targets[0]
			sh := s.shards[ti]
			s.p2s = append(s.p2s, pointLoc{shard: int32(ti), lid: int32(len(sh.l2gP)), p: e.p})
			sh.l2gP = append(sh.l2gP, e.gid)
		case opDelPt:
			tailDelPts[e.gid] = true
		case opInsObs:
			loc := obsLoc{r: e.r}
			for _, ti := range targets {
				sh := s.shards[ti]
				loc.reps = append(loc.reps, obsRep{shard: int32(ti), lid: int32(len(sh.l2gO))})
				sh.l2gO = append(sh.l2gO, e.gid)
			}
			s.o2s = append(s.o2s, loc)
		case opDelObs:
			tailDelObs[e.gid] = true
		}
		s.log = append(s.log, e)
		acceptedSeq = append(acceptedSeq, se)
		rev++
	}

	// Phase 4: finalize the in-memory state at the recovered revision.
	s.rev.Store(rev)
	for _, sh := range s.shards {
		sh.committedEpoch = sh.db.Version()
		sh.committedRev = rev
	}
	// Live counts and the initial-range tombstones. Objects of the initial
	// range (the registries at the router cut) that are dead in the final
	// state and NOT deleted by an accepted tail entry were already dead at
	// the cut; mirrors must skip them at build time, since the deletions are
	// in no log anymore.
	deadP := 0
	initDeadPts := make(map[int32]bool)
	for gid := range s.p2s {
		loc := s.p2s[gid]
		if s.shards[loc.shard].db.current().deletedPts[loc.lid] {
			deadP++
			if gid < s.nInitPts && !tailDelPts[int32(gid)] {
				initDeadPts[int32(gid)] = true
			}
		}
	}
	deadO := 0
	initDeadObs := make(map[int32]bool)
	for gid := range s.o2s {
		rep := s.o2s[gid].reps[0]
		if s.shards[rep.shard].db.current().deletedObs[rep.lid] {
			deadO++
			if gid < s.nInitObs && !tailDelObs[int32(gid)] {
				initDeadObs[int32(gid)] = true
			}
		}
	}
	s.nPts.Store(int64(len(s.p2s) - deadP))
	s.nObs.Store(int64(len(s.o2s) - deadO))
	if len(initDeadPts) > 0 {
		s.initDeadPts = initDeadPts
	}
	if len(initDeadObs) > 0 {
		s.initDeadObs = initDeadObs
	}

	// Phase 5: compact every log to exactly the recovered state and attach
	// the writers. Shard-level automatic checkpoints stay off — the router
	// protocol owns checkpoint timing.
	for i, sc := range scans {
		sd := filepath.Join(dir, shardDirName(i))
		shRec := RecoveryStats{Epoch: s.shards[i].db.Version(), WALRecords: len(sc.applied)}
		if err := attachDurable(s.shards[i].db, sd, cfg, 0, sc.applied, shRec); err != nil {
			return nil, fmt.Errorf("connquery: durable: shard %d: %w", i, err)
		}
		rec.WALRecords += len(sc.applied)
	}
	if err := wal.Rewrite(seqDir, acceptedSeq); err != nil {
		return nil, fmt.Errorf("connquery: durable: sequencer: %w", err)
	}
	w, err := wal.Create(seqDir, rev+1, walOptions(cfg))
	if err != nil {
		return nil, fmt.Errorf("connquery: durable: sequencer: %w", err)
	}
	rec.Epoch = rev
	rec.PagesRead = pc.Faults()
	rec.PageHits = pc.Accesses() - pc.Faults()
	s.dur = &shardedDurable{dir: dir, seq: w, since: len(acceptedSeq), every: every, rec: rec}
	return s, nil
}

// durWritable is the mutation entry gate of the sharded tier.
func (s *ShardedDB) durWritable() error {
	d := s.dur
	if d == nil {
		return nil
	}
	s.seqMu.RLock()
	defer s.seqMu.RUnlock()
	if d.closed {
		return errors.New("connquery: durable database is closed")
	}
	return d.err
}

// maybeCheckpointDurable triggers the automatic checkpoint when due. Called
// at mutation entry, before any shard lock is held (the checkpoint itself
// takes every shard lock); the gate keeps concurrent mutations from piling
// up behind a second checkpoint.
func (s *ShardedDB) maybeCheckpointDurable() {
	d := s.dur
	if d == nil || d.every <= 0 {
		return
	}
	s.seqMu.RLock()
	due := d.err == nil && !d.closed && d.since >= d.every
	s.seqMu.RUnlock()
	if !due || !d.ckptGate.CompareAndSwap(false, true) {
		return
	}
	defer d.ckptGate.Store(false)
	s.Checkpoint() //nolint:errcheck // latched in d.err
}

// lockAllShards takes every shard lock in ascending index order (the global
// lock order) and returns the matching unlock.
func (s *ShardedDB) lockAllShards() (unlock func()) {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	return func() {
		for i := len(s.shards) - 1; i >= 0; i-- {
			s.shards[i].mu.Unlock()
		}
	}
}

// Checkpoint quiesces the router and makes the current revision durable:
// sync every log, write the router image, checkpoint every shard, truncate
// the sequencer. It serializes with mutations on the shard locks.
func (s *ShardedDB) Checkpoint() error {
	if s.dur == nil {
		return errNotDurable
	}
	unlock := s.lockAllShards()
	defer unlock()
	s.seqMu.Lock()
	defer s.seqMu.Unlock()
	return s.checkpointShardedLocked()
}

// checkpointShardedLocked runs the checkpoint protocol. Caller holds every
// shard lock and seqMu; any step's failure latches fail-stop.
func (s *ShardedDB) checkpointShardedLocked() error {
	d := s.dur
	if d.closed {
		return errors.New("connquery: durable database is closed")
	}
	if d.err != nil {
		return d.err
	}
	latch := func(err error) error {
		d.err = err
		return err
	}
	// Sync first: the router image must never reference shard state whose
	// log tail is still in page cache.
	for i, sh := range s.shards {
		if err := sh.db.syncWAL(); err != nil {
			return latch(fmt.Errorf("connquery: durable: shard %d: %w", i, err))
		}
	}
	if err := d.seq.Sync(); err != nil {
		return latch(fmt.Errorf("connquery: durable: sequencer: %w", err))
	}
	if err := writeRouterCkptFile(filepath.Join(d.dir, routerDirName), s.routerImage()); err != nil {
		return latch(err)
	}
	for i, sh := range s.shards {
		if err := sh.db.Checkpoint(); err != nil {
			return latch(fmt.Errorf("connquery: durable: shard %d: %w", i, err))
		}
	}
	if err := d.seq.Truncate(); err != nil {
		return latch(fmt.Errorf("connquery: durable: sequencer: %w", err))
	}
	d.since = 0
	return nil
}

// Close checkpoints the current revision and releases the durable
// directory. Closing an in-memory ShardedDB is a no-op. Queries keep
// working after Close; only mutations refuse.
func (s *ShardedDB) Close() error {
	d := s.dur
	if d == nil {
		return nil
	}
	unlock := s.lockAllShards()
	defer unlock()
	s.seqMu.Lock()
	defer s.seqMu.Unlock()
	if d.closed {
		return nil
	}
	var firstErr error
	if d.err == nil {
		firstErr = s.checkpointShardedLocked()
	}
	d.closed = true
	for i, sh := range s.shards {
		if err := sh.db.Close(); firstErr == nil && err != nil {
			firstErr = fmt.Errorf("connquery: durable: shard %d: %w", i, err)
		}
	}
	if err := d.seq.Close(); firstErr == nil && err != nil {
		firstErr = fmt.Errorf("connquery: durable: sequencer: %w", err)
	}
	return firstErr
}

// RecoveryStats reports what this handle's durable open did, aggregated
// across the router and every shard. Zero for in-memory handles.
func (s *ShardedDB) RecoveryStats() RecoveryStats {
	if s.dur == nil {
		return RecoveryStats{}
	}
	return s.dur.rec
}
